"""Unit and scenario tests for the Figure 2 condition-based k-set agreement."""

from __future__ import annotations

import pytest

from repro.algorithms.condition_kset import (
    ConditionBasedKSetAgreement,
    ConditionKSetProcess,
    StateTriple,
)
from repro.analysis.properties import assert_execution_correct
from repro.core.conditions import MaxLegalCondition
from repro.core.values import BOTTOM
from repro.core.vectors import InputVector
from repro.exceptions import InvalidParameterError
from repro.sync.adversary import (
    CrashEvent,
    CrashSchedule,
    crashes_in_round_one,
    no_crashes,
    staggered_schedule,
)
from repro.sync.runtime import SynchronousSystem


def make_algorithm(n=8, m=10, t=4, d=2, ell=1, k=2, **kwargs):
    condition = MaxLegalCondition(n=n, domain=m, x=t - d, ell=ell)
    return ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k, **kwargs), condition


class TestStateTriple:
    def test_priority(self):
        assert StateTriple(v_cond=5, v_tmf=3, v_out=1).priority_value() == 5
        assert StateTriple(v_tmf=3, v_out=1).priority_value() == 3
        assert StateTriple(v_out=1).priority_value() == 1
        assert StateTriple().priority_value() is BOTTOM

    def test_is_blank(self):
        assert StateTriple().is_blank()
        assert not StateTriple(v_out=0).is_blank()


class TestConstruction:
    def test_parameters_exposed(self):
        algorithm, condition = make_algorithm()
        assert algorithm.t == 4
        assert algorithm.d == 2
        assert algorithm.k == 2
        assert algorithm.ell == 1
        assert algorithm.x == 2
        assert algorithm.condition is condition
        assert algorithm.agreement_degree() == 2
        assert "condition-based" in algorithm.name

    def test_round_formulas(self):
        algorithm, _ = make_algorithm(t=6, d=3, ell=2, k=2, n=9, m=10)
        assert algorithm.condition_decision_round() == 3  # ⌊(3+2−1)/2⌋+1
        assert algorithm.last_round() == 4  # ⌊6/2⌋+1
        assert algorithm.max_rounds(9, 6) == 4

    def test_condition_round_never_exceeds_last_round(self):
        algorithm, _ = make_algorithm(n=8, m=10, t=4, d=4, ell=1, k=1,
                                      enforce_requirements=False)
        assert algorithm.condition_decision_round() <= algorithm.last_round()

    def test_requirement_ell_le_k(self):
        condition = MaxLegalCondition(n=8, domain=10, x=2, ell=3)
        with pytest.raises(InvalidParameterError):
            ConditionBasedKSetAgreement(condition=condition, t=4, d=2, k=2)

    def test_requirement_ell_le_t_minus_d(self):
        condition = MaxLegalCondition(n=8, domain=10, x=1, ell=2)
        with pytest.raises(InvalidParameterError):
            ConditionBasedKSetAgreement(condition=condition, t=4, d=3, k=2)
        # but allowed when explicitly relaxed
        ConditionBasedKSetAgreement(
            condition=condition, t=4, d=3, k=2, enforce_requirements=False
        )

    def test_parameter_validation(self):
        condition = MaxLegalCondition(n=8, domain=10, x=2, ell=1)
        with pytest.raises(InvalidParameterError):
            ConditionBasedKSetAgreement(condition=condition, t=-1, d=0, k=1)
        with pytest.raises(InvalidParameterError):
            ConditionBasedKSetAgreement(condition=condition, t=4, d=5, k=1)
        with pytest.raises(InvalidParameterError):
            ConditionBasedKSetAgreement(condition=condition, t=4, d=2, k=0)

    def test_create_process_checks_t(self):
        algorithm, _ = make_algorithm()
        with pytest.raises(InvalidParameterError):
            algorithm.create_process(0, 8, 3)
        process = algorithm.create_process(0, 8, 4)
        assert isinstance(process, ConditionKSetProcess)


class TestFastPath:
    def test_no_crash_two_rounds(self):
        algorithm, condition = make_algorithm()
        vector = InputVector([7, 7, 7, 3, 2, 7, 1, 5])
        assert condition.contains(vector)
        result = SynchronousSystem(8, 4, algorithm).run(vector)
        assert_execution_correct(result, vector, k=2, round_bound=2)
        assert result.rounds_executed == 2
        assert result.decided_values() == {7}

    def test_few_round_one_crashes_still_two_rounds(self):
        algorithm, _ = make_algorithm()
        vector = InputVector([7, 7, 7, 3, 2, 7, 1, 5])
        schedule = crashes_in_round_one(8, 2, delivered_prefix=3)  # f = t − d
        result = SynchronousSystem(8, 4, algorithm).run(vector, schedule)
        assert_execution_correct(result, vector, k=2, round_bound=2)

    def test_round_one_state_is_cond(self):
        algorithm, _ = make_algorithm()
        process = algorithm.create_process(0, 8, 4)
        process.initialize(7)
        vector = [7, 7, 7, 3, 2, 7, 1, 5]
        assert process.message_for_round(1) == 7
        process.receive_round(1, {pid: value for pid, value in enumerate(vector)})
        assert process.state.v_cond == 7
        assert process.state.v_tmf is BOTTOM
        assert process.state.v_out is BOTTOM
        assert process.view is not None and process.view.is_full()


class TestDegradedPath:
    def test_many_initial_crashes_use_tmf_branch(self):
        algorithm, condition = make_algorithm(t=4, d=2, ell=1, k=2)
        vector = InputVector([7, 7, 7, 3, 2, 7, 1, 5])
        schedule = crashes_in_round_one(8, 4, delivered_prefix=0)  # f = 4 > t − d = 2
        result = SynchronousSystem(8, 4, algorithm).run(vector, schedule)
        bound = algorithm.condition_decision_round()
        assert_execution_correct(result, vector, k=2, round_bound=bound)

    def test_round_one_tmf_state(self):
        algorithm, _ = make_algorithm()
        process = algorithm.create_process(0, 8, 4)
        process.initialize(5)
        process.message_for_round(1)
        # Only 4 senders heard (including itself): 4 bottoms > t − d = 2.
        process.receive_round(1, {0: 5, 1: 7, 2: 3, 3: 2})
        assert process.state.v_tmf == 7
        assert process.state.v_cond is BOTTOM

    def test_round_one_out_state(self):
        algorithm, condition = make_algorithm(t=4, d=2, ell=1, k=2)
        vector = [1, 2, 3, 4, 5, 6, 7, 8]
        assert not condition.contains(InputVector(vector))
        process = algorithm.create_process(0, 8, 4)
        process.initialize(1)
        process.message_for_round(1)
        process.receive_round(1, dict(enumerate(vector)))
        assert process.state.v_out == 8
        assert process.state.v_cond is BOTTOM


class TestOutsideCondition:
    def test_decides_by_classical_bound(self):
        algorithm, condition = make_algorithm(t=4, d=2, ell=1, k=2)
        vector = InputVector([1, 2, 3, 4, 5, 6, 7, 8])
        assert not condition.contains(vector)
        schedule = staggered_schedule(8, 4, per_round=2)
        result = SynchronousSystem(8, 4, algorithm).run(vector, schedule)
        assert_execution_correct(result, vector, k=2, round_bound=algorithm.last_round())

    def test_outside_with_many_initial_crashes_decides_early(self):
        algorithm, _ = make_algorithm(t=4, d=2, ell=1, k=2)
        vector = InputVector([1, 2, 3, 4, 5, 6, 7, 8])
        schedule = crashes_in_round_one(8, 3, delivered_prefix=0)
        result = SynchronousSystem(8, 4, algorithm).run(vector, schedule)
        assert_execution_correct(
            result, vector, k=2, round_bound=algorithm.condition_decision_round()
        )


class TestAgreementUnderSplits:
    def test_split_views_decide_at_most_k_values(self):
        """A round-1 prefix crash shows two different cond values; still <= k."""
        n, t, d, ell, k = 6, 3, 2, 1, 2
        condition = MaxLegalCondition(n=n, domain=9, x=t - d, ell=ell)
        algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        # p5 proposes the largest value but crashes after reaching only p0:
        # p0's view decodes 9 while the others decode 7.
        vector = InputVector([7, 7, 7, 2, 1, 9])
        schedule = CrashSchedule.from_events([CrashEvent.round_one_prefix(5, 1)])
        result = SynchronousSystem(n, t, algorithm).run(vector, schedule)
        assert_execution_correct(result, vector, k=k)
        assert result.decided_values() <= {7, 9}

    def test_consecutive_crashes_chain(self):
        n, t, d, ell, k = 8, 4, 2, 1, 2
        condition = MaxLegalCondition(n=n, domain=9, x=t - d, ell=ell)
        algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        vector = InputVector([5, 5, 5, 5, 4, 3, 2, 9])
        events = [
            CrashEvent.round_one_prefix(7, 1),
            CrashEvent(6, 2, frozenset({0})),
            CrashEvent(5, 3, frozenset({1})),
            CrashEvent(4, 3, frozenset()),
        ]
        result = SynchronousSystem(n, t, algorithm).run(
            vector, CrashSchedule.from_events(events)
        )
        assert_execution_correct(result, vector, k=k, round_bound=algorithm.last_round())
