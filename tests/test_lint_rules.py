"""Per-rule fixtures for :mod:`repro.lint.rules`.

Every rule gets at least one fixture it must fire on (the true positive)
and one structurally close fixture it must stay silent on (the clean pass),
so a rule that silently stops matching — or starts over-matching — fails
here before it ships.
"""

from __future__ import annotations

import textwrap

from repro.lint import run_lint


def lint_snippet(tmp_path, source, rule, filename="module.py"):
    """Lint one dedented *source* snippet with a single *rule*."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(tmp_path, rules=[rule])


def fired(report, rule):
    return [finding for finding in report.findings if finding.rule == rule]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_fires_on_module_level_random(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random

            def pick(values):
                return random.choice(values)
            """,
            "unseeded-random",
        )
        assert len(fired(report, "unseeded-random")) == 1

    def test_fires_on_seedless_random_constructor(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from random import Random

            def make_rng():
                return Random()
            """,
            "unseeded-random",
        )
        assert len(fired(report, "unseeded-random")) == 1

    def test_fires_on_os_urandom(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import os

            def token():
                return os.urandom(8)
            """,
            "unseeded-random",
        )
        assert len(fired(report, "unseeded-random")) == 1

    def test_clean_on_seeded_random(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from random import Random

            def make_rng(seed):
                return Random(seed)
            """,
            "unseeded-random",
        )
        assert report.clean


class TestWallClock:
    def test_fires_on_time_time(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            "wall-clock",
        )
        assert len(fired(report, "wall-clock")) == 1

    def test_fires_on_datetime_now(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            "wall-clock",
        )
        assert len(fired(report, "wall-clock")) == 1

    def test_serve_layer_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def uptime(started):
                return time.monotonic() - started
            """,
            "wall-clock",
            filename="serve/daemon.py",
        )
        assert report.clean

    def test_clean_without_clock_reads(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def duration(rounds):
                return rounds * 3
            """,
            "wall-clock",
        )
        assert report.clean


class TestSetIteration:
    def test_fires_on_for_over_set_literal(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def emit(sink):
                for value in {3, 1, 2}:
                    sink.append(value)
            """,
            "set-iteration",
        )
        assert len(fired(report, "set-iteration")) == 1

    def test_fires_on_listcomp_over_set_call(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def order(values):
                return [value for value in set(values)]
            """,
            "set-iteration",
        )
        assert len(fired(report, "set-iteration")) == 1

    def test_fires_on_list_of_frozenset(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def order(values):
                return list(frozenset(values))
            """,
            "set-iteration",
        )
        assert len(fired(report, "set-iteration")) == 1

    def test_clean_when_sorted(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def order(values):
                for value in sorted(set(values)):
                    yield value
                return [value for value in sorted({3, 1, 2})]
            """,
            "set-iteration",
        )
        assert report.clean

    def test_clean_on_order_free_folds(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def fold(values):
                return sum(set(values)) + max({1, 2}) + len(frozenset(values))
            """,
            "set-iteration",
        )
        assert report.clean


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistryEntry:
    def test_fires_on_computed_name(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            NAME = "alpha"

            @register_algorithm(NAME, ("sync",), "summary")
            def build(spec, condition):
                return None
            """,
            "registry-entry",
        )
        assert len(fired(report, "registry-entry")) == 1

    def test_fires_on_duplicate_name(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_schedule("worst-case", "one")
            def one(spec, crashes, seed):
                return None

            @register_schedule("worst-case", "two")
            def two(spec, crashes, seed):
                return None
            """,
            "registry-entry",
        )
        findings = fired(report, "registry-entry")
        assert len(findings) == 1
        assert "twice" in findings[0].message

    def test_fires_on_unknown_backend(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_algorithm("alpha", ("sync", "quantum"), "summary")
            def build(spec, condition):
                return None
            """,
            "registry-entry",
        )
        findings = fired(report, "registry-entry")
        assert len(findings) == 1
        assert "unknown backend" in findings[0].message

    def test_fires_on_missing_backends(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_algorithm("alpha")
            def build(spec, condition):
                return None
            """,
            "registry-entry",
        )
        assert len(fired(report, "registry-entry")) == 1

    def test_clean_on_literal_registration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_algorithm("alpha", ("sync", "async"), "summary")
            def build(spec, condition):
                return None

            @register_schedule("worst-case", "summary")
            def schedule(spec, crashes, seed):
                return None
            """,
            "registry-entry",
        )
        assert report.clean


class TestMutantRegistration:
    def test_fires_on_import_time_registration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.check.mutants import register_mutants

            register_mutants()
            """,
            "mutant-registration",
        )
        assert len(fired(report, "mutant-registration")) == 1

    def test_fires_on_direct_algorithms_add(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.api.registry import ALGORITHMS

            ALGORITHMS.add("sneaky", object())
            """,
            "mutant-registration",
        )
        assert len(fired(report, "mutant-registration")) == 1

    def test_clean_when_wrapped_in_function(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.check.mutants import register_mutants

            def opt_in():
                register_mutants()
            """,
            "mutant-registration",
        )
        assert report.clean


class TestAdversaryNamespace:
    def test_fires_on_cross_namespace_collision(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_async_adversary("skew", "async strategy")
            def async_factory(seed):
                return None

            @register_net_adversary("skew", "net failure model")
            def net_factory(n, t, seed):
                return None
            """,
            "adversary-namespace",
        )
        # Flagged at every registration site of the colliding name.
        assert len(fired(report, "adversary-namespace")) == 2

    def test_clean_on_disjoint_names(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            @register_async_adversary("latency-skew", "async strategy")
            def async_factory(seed):
                return None

            @register_net_adversary("send-omission", "net failure model")
            def net_factory(n, t, seed):
                return None
            """,
            "adversary-namespace",
        )
        assert report.clean


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
_RECORD_CLASS = """
    from dataclasses import dataclass

    @dataclass
    class Sample:
        left: int
        right: int

        def to_record(self):
            return {%s}

        @classmethod
        def from_record(cls, record):
            return cls(**record)
    """


class TestRecordParity:
    def test_keys_rule_fires_on_phantom_key(self, tmp_path):
        source = _RECORD_CLASS % '"left": self.left, "right": self.right, "ghost": 0'
        report = lint_snippet(tmp_path, source, "record-parity-keys")
        findings = fired(report, "record-parity-keys")
        assert len(findings) == 1
        assert "ghost" in findings[0].message

    def test_fields_rule_fires_on_dropped_field(self, tmp_path):
        source = _RECORD_CLASS % '"left": self.left'
        report = lint_snippet(tmp_path, source, "record-parity-fields")
        findings = fired(report, "record-parity-fields")
        assert len(findings) == 1
        assert "right" in findings[0].message

    def test_both_clean_on_exact_parity(self, tmp_path):
        source = _RECORD_CLASS % '"left": self.left, "right": self.right'
        for rule in ("record-parity-keys", "record-parity-fields"):
            assert lint_snippet(tmp_path, source, rule).clean

    def test_one_way_to_record_is_exempt(self, tmp_path):
        # No from_record => no round-trip promise => no parity obligation.
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Summary:
                total: int
                detail: str

                def to_record(self):
                    return {"total": self.total}
            """,
            "record-parity-fields",
        )
        assert report.clean


class TestStoreKinds:
    def test_fires_on_kind_without_reader(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            EVENT_KIND = "event"

            class Store:
                def append_event(self, event):
                    self.write({"kind": EVENT_KIND})
            """,
            "store-kinds",
        )
        findings = fired(report, "store-kinds")
        assert len(findings) == 1
        assert "load" in findings[0].message

    def test_fires_on_kind_without_writer(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            EVENT_KIND = "event"

            class Store:
                def load_events(self):
                    return [r for r in self.records if r["kind"] == EVENT_KIND]
            """,
            "store-kinds",
        )
        findings = fired(report, "store-kinds")
        assert len(findings) == 1
        assert "append" in findings[0].message

    def test_clean_on_paired_kind(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            EVENT_KIND = "event"

            class Store:
                def append_event(self, event):
                    self.write({"kind": EVENT_KIND})

                def load_events(self):
                    return [r for r in self.records if r["kind"] == EVENT_KIND]
            """,
            "store-kinds",
        )
        assert report.clean


# ----------------------------------------------------------------------
# parallel-safety
# ----------------------------------------------------------------------
class TestEnvelopeFrozen:
    def test_fires_on_unfrozen_envelope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class SweepShard:
                index: int
            """,
            "envelope-frozen",
        )
        assert len(fired(report, "envelope-frozen")) == 1

    def test_fires_on_plain_class_envelope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class ReplayTask:
                pass
            """,
            "envelope-frozen",
        )
        assert len(fired(report, "envelope-frozen")) == 1

    def test_clean_on_frozen_envelope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepShard:
                index: int
            """,
            "envelope-frozen",
        )
        assert report.clean

    def test_non_envelope_classes_are_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Outcome:
                pass
            """,
            "envelope-frozen",
        )
        assert report.clean


class TestEnvelopeFields:
    def test_fires_on_mutable_container_field(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepShard:
                items: list[int]
            """,
            "envelope-fields",
        )
        findings = fired(report, "envelope-fields")
        assert len(findings) == 1
        assert "items" in findings[0].message

    def test_fires_inside_string_forward_reference(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepShard:
                table: "dict[str, int]"
            """,
            "envelope-fields",
        )
        assert len(fired(report, "envelope-fields")) == 1

    def test_clean_on_immutable_fields(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepShard:
                spec: "AgreementSpec"
                runs: tuple[tuple[int, int], ...]
                crashed: frozenset[int]
                label: str | None
            """,
            "envelope-fields",
        )
        assert report.clean

    def test_fires_on_packed_batch_envelope_field(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            from repro.vec import PackedBlock

            @dataclass(frozen=True)
            class CheckShard:
                start: int
                block: "PackedBlock | None"
            """,
            "envelope-fields",
        )
        findings = fired(report, "envelope-fields")
        assert len(findings) == 1
        assert "PackedBlock" in findings[0].message
        assert "vectorized" in findings[0].message

    def test_clean_on_vectorized_flag_envelope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CheckShard:
                start: int
                vectorized: bool
            """,
            "envelope-fields",
        )
        assert report.clean


# ----------------------------------------------------------------------
# exceptions
# ----------------------------------------------------------------------
class TestRaiseBuiltin:
    def test_fires_on_builtin_raise(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def validate(n):
                if n < 1:
                    raise ValueError("n must be positive")
            """,
            "raise-builtin",
        )
        assert len(fired(report, "raise-builtin")) == 1

    def test_clean_on_repro_exception(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.exceptions import InvalidParameterError

            def validate(n):
                if n < 1:
                    raise InvalidParameterError("n must be positive")
            """,
            "raise-builtin",
        )
        assert report.clean

    def test_not_implemented_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Oracle:
                def applies(self, execution):
                    raise NotImplementedError
            """,
            "raise-builtin",
        )
        assert report.clean

    def test_getattr_protocol_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Proxy:
                def __getattr__(self, name):
                    raise AttributeError(name)
            """,
            "raise-builtin",
        )
        assert report.clean

    def test_attribute_error_outside_getattr_fires(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def lookup(name):
                raise AttributeError(name)
            """,
            "raise-builtin",
        )
        assert len(fired(report, "raise-builtin")) == 1

    def test_bare_reraise_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def passthrough(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """,
            "raise-builtin",
        )
        assert report.clean


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
class TestOracleApplicability:
    def test_fires_without_applicability(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def build():
                return NetPropertyOracle("net-validity", "summary")
            """,
            "oracle-applicability",
        )
        assert len(fired(report, "oracle-applicability")) == 1

    def test_fires_with_check_keyword_but_no_applies(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def build(check):
                return PropertyOracle("validity", "summary", check=check)
            """,
            "oracle-applicability",
        )
        assert len(fired(report, "oracle-applicability")) == 1

    def test_clean_with_positional_applies(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def build(always, check):
                return AsyncPropertyOracle("async-validity", "summary", always, check)
            """,
            "oracle-applicability",
        )
        assert report.clean

    def test_clean_with_applies_keyword(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def build(always, check):
                return PropertyOracle("validity", "summary", applies=always, check=check)
            """,
            "oracle-applicability",
        )
        assert report.clean


# ----------------------------------------------------------------------
# every rule has both fixture directions covered
# ----------------------------------------------------------------------
def test_every_registered_rule_is_exercised_here():
    """Adding a rule without fixtures must fail loudly, not silently."""
    from repro.lint import available_rules

    covered = {
        "unseeded-random",
        "wall-clock",
        "set-iteration",
        "registry-entry",
        "mutant-registration",
        "adversary-namespace",
        "record-parity-keys",
        "record-parity-fields",
        "store-kinds",
        "envelope-frozen",
        "envelope-fields",
        "raise-builtin",
        "oracle-applicability",
    }
    assert set(available_rules()) == covered
