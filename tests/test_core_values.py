"""Unit tests for the value domain and the ⊥ placeholder."""

from __future__ import annotations

import pickle

import pytest

from repro.core.values import BOTTOM, Bottom, ValueDomain, is_bottom
from repro.exceptions import InvalidParameterError


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM
        assert Bottom() is Bottom()

    def test_equality(self):
        assert BOTTOM == Bottom()
        assert BOTTOM != 0
        assert BOTTOM != "⊥"
        assert not (BOTTOM == 3)

    def test_is_smaller_than_every_value(self):
        assert BOTTOM < 0
        assert BOTTOM < -100
        assert BOTTOM < "a"
        assert BOTTOM <= BOTTOM
        assert not (BOTTOM < BOTTOM)
        assert not (BOTTOM > 5)
        assert BOTTOM >= BOTTOM

    def test_values_compare_greater_than_bottom(self):
        # The reflected comparisons must also work: max() relies on them.
        assert 3 > BOTTOM
        assert "z" > BOTTOM
        assert max([BOTTOM, 2, BOTTOM, 7, 1]) == 7
        assert max([BOTTOM, BOTTOM]) is BOTTOM

    def test_is_falsy(self):
        assert not BOTTOM
        assert bool(BOTTOM) is False

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_hashable_and_stable(self):
        assert hash(BOTTOM) == hash(Bottom())
        assert len({BOTTOM, Bottom()}) == 1

    def test_pickle_preserves_singleton(self):
        clone = pickle.loads(pickle.dumps(BOTTOM))
        assert clone is BOTTOM

    def test_is_bottom_helper(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(0)
        assert not is_bottom(None)
        assert not is_bottom("bottom")


class TestValueDomain:
    def test_basic_iteration(self):
        domain = ValueDomain(4)
        assert list(domain) == [1, 2, 3, 4]
        assert len(domain) == 4
        assert domain.size == 4
        assert domain.min_value == 1
        assert domain.max_value == 4

    def test_membership(self):
        domain = ValueDomain(3)
        assert 1 in domain
        assert 3 in domain
        assert 0 not in domain
        assert 4 not in domain
        assert BOTTOM not in domain
        assert True not in domain  # booleans are not domain values
        assert "2" not in domain

    def test_indexing(self):
        domain = ValueDomain(5)
        assert domain[0] == 1
        assert domain[-1] == 5
        assert list(domain[1:3]) == [2, 3]

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            ValueDomain(0)
        with pytest.raises(InvalidParameterError):
            ValueDomain(-2)
        with pytest.raises(InvalidParameterError):
            ValueDomain("three")

    def test_equality_and_hash(self):
        assert ValueDomain(3) == ValueDomain(3)
        assert ValueDomain(3) != ValueDomain(4)
        assert len({ValueDomain(3), ValueDomain(3), ValueDomain(4)}) == 2

    def test_values_greater_than(self):
        domain = ValueDomain(5)
        assert list(domain.values_greater_than(3)) == [4, 5]
        assert domain.count_greater_than(3) == 2
        assert domain.count_greater_than(5) == 0
        assert domain.count_greater_than(0) == 5

    def test_validate_value(self):
        domain = ValueDomain(3)
        domain.validate_value(2)
        with pytest.raises(InvalidParameterError):
            domain.validate_value(9)
        with pytest.raises(InvalidParameterError):
            domain.validate_value(BOTTOM)
