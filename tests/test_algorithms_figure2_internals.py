"""Trace-level tests of the Figure 2 algorithm's internal behaviour.

These tests open the box: they check *how* the algorithm reaches its
decisions — the line-14 "send then decide" behaviour, the max-reduction of the
three value classes (lines 15–17), the priority among classes at the deadline
rounds (lines 18–21), and the fact that decided values originate from the
round-1 decoding of views (Definition 4) — not only that the final outcome is
correct.
"""

from __future__ import annotations

from repro.algorithms.condition_kset import ConditionBasedKSetAgreement, StateTriple
from repro.core.conditions import MaxLegalCondition
from repro.core.values import BOTTOM
from repro.core.vectors import InputVector
from repro.sync.adversary import CrashEvent, CrashSchedule, crashes_in_round_one
from repro.sync.runtime import SynchronousSystem


def build(n=8, m=10, t=4, d=2, ell=1, k=2):
    condition = MaxLegalCondition(n=n, domain=m, x=t - d, ell=ell)
    algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
    return condition, algorithm


class TestLineFourteen:
    def test_decides_the_sent_value_without_reading(self):
        """A process whose v_cond was set decides at its next round, even if the
        messages it receives in that round would have changed its state."""
        _, algorithm = build()
        process = algorithm.create_process(0, 8, 4)
        process.initialize(7)
        process.message_for_round(1)
        process.receive_round(1, {0: 7, 1: 7, 2: 7, 3: 3, 4: 2, 5: 7, 6: 1, 7: 5})
        assert process.state.v_cond == 7

        payload = process.message_for_round(2)
        assert isinstance(payload, StateTriple) and payload.v_cond == 7
        # Deliver a *different* (larger) condition value: it must be ignored.
        process.receive_round(2, {1: StateTriple(v_cond=9)})
        assert process.has_decided()
        assert process.decision == 7
        assert process.decision_round == 2
        assert process.has_halted()

    def test_does_not_decide_at_line_14_without_cond_value(self):
        _, algorithm = build()
        process = algorithm.create_process(0, 8, 4)
        process.initialize(5)
        process.message_for_round(1)
        process.receive_round(1, {0: 5, 1: 4, 2: 3})  # too many ⊥ → tmf branch
        process.message_for_round(2)
        process.receive_round(2, {0: process.state})
        # condition round is 2 here (d=2, l=1, k=2) and v_out is ⊥, so it decides
        # at line 20 with the tmf value, not at line 14.
        assert process.has_decided()
        assert process.decision == 5
        assert process.decision_round == algorithm.condition_decision_round()


class TestStateReduction:
    def test_max_reduction_over_received_states(self):
        _, algorithm = build(t=4, d=2, ell=1, k=1)
        process = algorithm.create_process(0, 8, 4)
        process.initialize(1)
        process.message_for_round(1)
        process.receive_round(1, {0: 1, 1: 2, 2: 3})  # 5 bottoms > t−d: tmf = 3
        assert process.state == StateTriple(v_tmf=3)

        process.message_for_round(2)
        process.receive_round(
            2,
            {
                1: StateTriple(v_tmf=6),
                2: StateTriple(v_out=4),
                3: StateTriple(v_cond=BOTTOM, v_tmf=5, v_out=BOTTOM),
            },
        )
        # Not a deadline round for k=1 (condition round is 3, last round 5):
        # the process only merges states.
        assert not process.has_decided()
        assert process.state.v_tmf == 6
        assert process.state.v_out == 4
        assert process.state.v_cond is BOTTOM

    def test_priority_cond_over_tmf_over_out(self):
        _, algorithm = build(t=4, d=2, ell=1, k=2)
        deadline = algorithm.last_round()
        # The process itself takes the v_out branch in round 1 (its view is the
        # full out-of-condition vector, so its own v_out is 8); the seeded peer
        # state then exercises each priority level in turn.
        for seeded_state, expected in [
            (StateTriple(v_cond=9, v_tmf=5, v_out=7), 9),
            (StateTriple(v_tmf=5, v_out=7), 5),
            (StateTriple(v_out=7), 8),
        ]:
            process = algorithm.create_process(0, 8, 4)
            process.initialize(7)
            process.message_for_round(1)
            process.receive_round(1, dict(enumerate([1, 2, 3, 4, 5, 6, 7, 8])))  # v_out branch
            for round_number in range(2, deadline + 1):
                if process.has_decided():
                    break
                process.message_for_round(round_number)
                process.receive_round(round_number, {1: seeded_state})
            assert process.has_decided()
            assert process.decision == expected


class TestDecisionProvenance:
    def test_fast_path_decisions_come_from_the_decoded_set(self):
        condition, algorithm = build(n=8, m=10, t=4, d=2, ell=1, k=2)
        vector = InputVector([7, 7, 7, 3, 2, 7, 1, 5])
        result = SynchronousSystem(8, 4, algorithm).run(
            vector, crashes_in_round_one(8, 2, delivered_prefix=4)
        )
        full_decoded = condition.decode(vector.restrict(range(8)))
        assert result.decided_values() <= full_decoded

    def test_ell2_condition_can_decide_two_values(self):
        """With an l = 2 condition and k = 2, both encoded values may be decided
        when a round-1 crash splits the views — and never a third one."""
        n, m, t, d, ell, k = 6, 9, 3, 1, 2, 2
        condition = MaxLegalCondition(n, m, t - d, ell)
        algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        # 9 and 8 are the two encoded values; the crash of p5 (which proposes 9)
        # after reaching only p0 gives p0 a view decoding {9, 8} and the others
        # views decoding {8, ...}.
        vector = InputVector([8, 8, 8, 8, 7, 9])
        assert condition.contains(vector)
        schedule = CrashSchedule.from_events([CrashEvent.round_one_prefix(5, 1)])
        result = SynchronousSystem(n, t, algorithm).run(vector, schedule)
        assert result.decided_values() <= {8, 9}
        assert len(result.decided_values()) <= k

    def test_out_branch_decides_a_maximum_of_some_view(self):
        condition, algorithm = build(n=8, m=12, t=4, d=2, ell=1, k=2)
        vector = InputVector([1, 2, 3, 4, 5, 6, 7, 12])
        assert not condition.contains(vector)
        result = SynchronousSystem(8, 4, algorithm).run(vector)
        # With no crashes every view is the full vector: the only possible
        # decision through the v_out class is its maximum.
        assert result.decided_values() == {12}


class TestDeadlineInteraction:
    def test_condition_round_equals_last_round_when_class_contains_all_vectors(self):
        """For d = t − l + 1 (the class that contains C_all, Theorem 8) the
        in-condition bound ⌊(d+l−1)/k⌋ + 1 degenerates to the classical
        ⌊t/k⌋ + 1 — the sanity check the paper makes at the end of Section 1.2."""
        n, m, t, ell, k = 9, 12, 6, 2, 2
        d = t - ell + 1
        condition = MaxLegalCondition(n, m, t - d, ell)
        algorithm = ConditionBasedKSetAgreement(
            condition=condition, t=t, d=d, k=k, enforce_requirements=False
        )
        assert algorithm.condition_decision_round() == algorithm.last_round()

    def test_no_decision_before_round_two(self):
        _, algorithm = build()
        vector = InputVector([7, 7, 7, 7, 7, 7, 7, 7])
        result = SynchronousSystem(8, 4, algorithm).run(vector)
        assert min(result.decision_rounds.values()) == 2
