"""Tests for the unified ``repro.api`` engine, registries and result record."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api import (
    ALGORITHMS,
    SCHEDULES,
    AgreementSpec,
    Engine,
    Registry,
    RunConfig,
    RunResult,
    available_algorithms,
    available_schedules,
)
from repro.algorithms import FloodMinKSetAgreement
from repro.analysis import check_execution
from repro.core import InputVector
from repro.exceptions import BackendError, InvalidParameterError, RegistryError
from repro.sync import CrashSchedule, crashes_in_round_one, initial_crashes
from repro.workloads import vector_in_max_condition


SPEC = AgreementSpec(n=8, t=4, k=2, d=2, ell=1, domain=10)
VECTOR = InputVector([7, 7, 7, 3, 2, 7, 1, 7])


class TestSpec:
    def test_derived_parameters(self):
        assert SPEC.x == 2
        assert SPEC.in_condition_bound() == 2
        assert SPEC.outside_condition_bound() == 3

    def test_d_defaults_to_t(self):
        spec = AgreementSpec(n=5, t=3, k=2)
        assert spec.d == 3 and spec.x == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AgreementSpec(n=4, t=4)  # t must be < n
        with pytest.raises(InvalidParameterError):
            AgreementSpec(n=4, t=2, d=3)  # d must be <= t
        with pytest.raises(InvalidParameterError):
            AgreementSpec(n=4, t=2, k=0)
        with pytest.raises(InvalidParameterError):
            RunConfig(backend="quantum")

    def test_condition_is_shared_across_equal_specs(self):
        other = AgreementSpec(n=8, t=4, k=2, d=2, ell=1, domain=10)
        assert SPEC.condition_oracle() is other.condition_oracle()

    def test_replace(self):
        derived = SPEC.replace(d=3)
        assert derived.d == 3 and derived.n == SPEC.n
        assert SPEC.d == 2  # frozen original untouched


class TestRegistry:
    def test_expected_algorithms_registered(self):
        for name in (
            "condition-kset",
            "floodmin",
            "early-deciding",
            "condition-consensus",
            "async-condition",
        ):
            assert name in available_algorithms()

    def test_expected_schedules_registered(self):
        for name in ("none", "round-one", "initial", "staggered", "random"):
            assert name in available_schedules()

    def test_unknown_algorithm_error_lists_known_names(self):
        with pytest.raises(RegistryError) as excinfo:
            ALGORITHMS.get("raft")
        message = str(excinfo.value)
        assert "raft" in message and "condition-kset" in message

    def test_unknown_schedule_error(self):
        with pytest.raises(RegistryError):
            SCHEDULES.get("byzantine")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.add("a", 1)
        with pytest.raises(RegistryError):
            registry.add("a", 2)

    def test_backend_support_flags(self):
        assert ALGORITHMS.get("condition-kset").supports("async")
        assert not ALGORITHMS.get("floodmin").supports("async")
        assert not ALGORITHMS.get("async-condition").supports("sync")


class TestEngineRun:
    def test_every_registered_algorithm_runs_through_one_call_path(self):
        consensus_spec = AgreementSpec(n=8, t=4, k=1, d=2, ell=1, domain=10)
        for name, entry in ALGORITHMS.items():
            spec = consensus_spec if "consensus" in name else SPEC
            for backend in sorted(entry.backends):
                engine = Engine(spec, name, RunConfig(backend=backend))
                result = engine.run(VECTOR)
                assert isinstance(result, RunResult)
                assert result.algorithm == name
                assert result.backend == backend
                degree = engine.agreement_degree(backend)
                assert result.distinct_decision_count() <= degree
                assert result.decided_values() <= set(VECTOR.entries)
                assert result.terminated

    def test_unsupported_backend_raises(self):
        with pytest.raises(BackendError):
            Engine(SPEC, "floodmin").run(VECTOR, backend="async")
        with pytest.raises(BackendError):
            Engine(SPEC, "async-condition").run(VECTOR, backend="sync")

    def test_schedule_by_name_and_object(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(crashes=2))
        by_name = engine.run(VECTOR, "round-one")
        by_object = engine.run(VECTOR, crashes_in_round_one(8, 2, delivered_prefix=4))
        assert by_name.decisions == by_object.decisions
        assert by_name.failure_count == by_object.failure_count == 2

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            Engine(SPEC, "condition-kset").run([1, 2, 3])

    def test_section61_enforced_outside_degenerate_regime(self):
        # l > t − d with d != t is a user error, exactly as in the seed API...
        with pytest.raises(InvalidParameterError):
            Engine(AgreementSpec(n=8, t=4, k=3, d=3, ell=3, domain=10), "condition-kset")
        # ...while the documented classical d = t regime stays allowed.
        degenerate = Engine(AgreementSpec(n=8, t=4, k=2, d=4, ell=1, domain=10), "condition-kset")
        assert degenerate.run(VECTOR).terminated

    def test_staggered_schedule_honours_crash_budget(self):
        limited = Engine(
            SPEC, "condition-kset", RunConfig(schedule="staggered", crashes=1)
        ).run(VECTOR)
        assert limited.failure_count == 1
        full = Engine(SPEC, "condition-kset", RunConfig(schedule="staggered")).run(VECTOR)
        assert full.failure_count == SPEC.t

    def test_zero_max_steps_rejected(self):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            engine.run(VECTOR, backend="async", max_steps=0)

    def test_membership_annotation(self):
        engine = Engine(SPEC, "condition-kset")
        assert engine.run(VECTOR).in_condition is True
        assert engine.run([8, 7, 6, 5, 4, 3, 2, 1]).in_condition is False
        assert Engine(SPEC, "floodmin").run(VECTOR).in_condition is None


class TestRunResultNormalization:
    def test_sync_async_parity(self):
        """The same spec + vector yields structurally identical records on
        both backends, modulo the declared time unit."""
        engine = Engine(SPEC, "condition-kset")
        sync_result = engine.run(VECTOR)
        async_result = engine.run(VECTOR, backend="async", seed=3)

        assert sync_result.time_unit == "rounds"
        assert async_result.time_unit == "steps"
        for result in (sync_result, async_result):
            assert result.n == SPEC.n and result.t == SPEC.t
            assert result.input_vector == VECTOR
            assert result.terminated
            assert result.in_condition is True
            assert result.correct_processes == frozenset(range(SPEC.n))
            assert set(result.decision_times) == set(result.decisions)
            assert result.duration > 0
            assert bool(check_execution(result, VECTOR, SPEC.k))
        # Both backends must agree on the decision itself here: the condition
        # decodes the dominant value 7 whatever the model.
        assert sync_result.decided_values() == async_result.decided_values()

    def test_raw_results_preserved(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(record_trace=True))
        sync_result = engine.run(VECTOR)
        assert sync_result.raw is not None
        assert sync_result.raw.decisions == sync_result.decisions
        assert sync_result.trace is not None
        async_result = engine.run(VECTOR, backend="async")
        assert async_result.raw.total_steps == async_result.duration

    def test_max_steps_rejected_on_sync_backend(self):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            engine.run(VECTOR, max_steps=5)
        # async accepts it: a tiny budget makes the run exhaust visibly.
        starved = engine.run(VECTOR, backend="async", max_steps=1)
        assert starved.time_unit == "steps"

    def test_beyond_resilience_async_crashes_block_not_crash(self):
        """> x never-scheduled processes voids the Section 4 guarantee: the
        run is legal, blocks, and reports terminated=False."""
        engine = Engine(SPEC, "condition-kset")
        overloaded = engine.run(
            VECTOR, initial_crashes(3, (5, 6, 7)), backend="async", max_steps=30
        )
        assert overloaded.in_condition is True
        assert not overloaded.terminated
        assert overloaded.decisions == {}

    def test_rounds_accessors_guarded_on_async(self):
        async_result = Engine(SPEC, "condition-kset").run(VECTOR, backend="async")
        with pytest.raises(InvalidParameterError):
            async_result.max_decision_round_of_correct()
        with pytest.raises(InvalidParameterError):
            _ = async_result.rounds_executed

    def test_crashed_processes_normalized(self):
        engine = Engine(SPEC, "condition-kset")
        schedule = initial_crashes(2, (6, 7))
        sync_result = engine.run(VECTOR, schedule)
        async_result = engine.run(VECTOR, schedule, backend="async", seed=5)
        assert sync_result.crashed == frozenset({6, 7})
        assert async_result.crashed == frozenset({6, 7})
        assert sync_result.correct_processes == async_result.correct_processes

    def test_normalize_is_idempotent(self):
        result = Engine(SPEC, "condition-kset").run(VECTOR)
        assert RunResult.normalize(result) is result
        renormalized = RunResult.normalize(result.raw, algorithm="condition-kset")
        assert renormalized.decisions == result.decisions


class TestRunBatch:
    def _vectors(self, count: int = 12) -> list:
        return [
            vector_in_max_condition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell, seed)
            for seed in range(count)
        ]

    def test_batch_matches_individual_runs(self):
        vectors = self._vectors()
        engine = Engine(SPEC, "condition-kset")
        batch = engine.run_batch(vectors)
        singles = [Engine(SPEC, "condition-kset").run(v) for v in vectors]
        assert [r.decisions for r in batch] == [r.decisions for r in singles]
        assert [r.duration for r in batch] == [r.duration for r in singles]

    def test_determinism_under_fixed_seed(self):
        vectors = self._vectors()
        config = RunConfig(schedule="random", crashes=3, seed=42)
        first = Engine(SPEC, "condition-kset", config).run_batch(vectors)
        second = Engine(SPEC, "condition-kset", config).run_batch(vectors)
        assert [r.decisions for r in first] == [r.decisions for r in second]
        assert [sorted(r.crashed) for r in first] == [sorted(r.crashed) for r in second]
        assert [r.duration for r in first] == [r.duration for r in second]
        # A different base seed must change at least one adversary choice.
        other = Engine(SPEC, "condition-kset", config.replace(seed=43)).run_batch(vectors)
        assert [sorted(r.crashed) for r in first] != [sorted(r.crashed) for r in other]

    def test_async_batch_determinism(self):
        vectors = self._vectors(6)
        config = RunConfig(backend="async", seed=7)
        first = Engine(SPEC, "condition-kset", config).run_batch(vectors)
        second = Engine(SPEC, "condition-kset", config).run_batch(vectors)
        assert [r.decisions for r in first] == [r.decisions for r in second]
        assert [r.duration for r in first] == [r.duration for r in second]
        assert all(r.time_unit == "steps" for r in first)

    def test_chunking_does_not_change_results(self):
        vectors = self._vectors()
        plain = Engine(SPEC, "condition-kset").run_batch(vectors)
        chunked = Engine(SPEC, "condition-kset").run_batch(vectors, chunk_size=5)
        assert [r.decisions for r in plain] == [r.decisions for r in chunked]

    def test_schedule_pairing_validated(self):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            engine.run_batch([VECTOR, VECTOR], ["none"])  # too few schedules
        with pytest.raises(InvalidParameterError):
            engine.run_batch([VECTOR], ["none", "none"])  # too many schedules

    def test_infinite_schedule_stream_accepted(self):
        import itertools

        vectors = self._vectors(4)
        broadcast = Engine(SPEC, "condition-kset").run_batch(
            vectors, itertools.repeat("none")
        )
        plain = Engine(SPEC, "condition-kset").run_batch(vectors, "none")
        assert [r.decisions for r in broadcast] == [r.decisions for r in plain]

    def test_streaming_generators_accepted(self):
        vectors = self._vectors(6)
        eager = Engine(SPEC, "condition-kset").run_batch(vectors, "round-one")
        lazy = Engine(SPEC, "condition-kset").run_batch(
            (v for v in vectors), ("round-one" for _ in vectors), chunk_size=2
        )
        assert [r.decisions for r in lazy] == [r.decisions for r in eager]

    def test_memoization_shares_condition_work(self):
        vectors = self._vectors(4)
        engine = Engine(SPEC, "condition-kset")
        engine.run_batch(vectors * 5)
        stats = engine.cache_stats()
        # 20 runs over 4 distinct failure-free vectors: membership computed 4
        # times, answered from the cache 16 times; decodes collapse likewise.
        assert stats["contains"].misses == 4
        assert stats["contains"].hits == 16
        assert stats["decode"].hits > stats["decode"].misses


class TestSweep:
    def test_grid_produces_cells(self):
        engine = Engine(SPEC, "condition-kset")
        cells = engine.sweep({"d": (1, 2), "k": (2, 3)}, runs_per_cell=2)
        assert len(cells) == 4
        for cell in cells:
            assert cell.error is None
            assert cell.runs == 2
            assert cell.max_distinct_decisions() <= cell.spec.k
            assert cell.in_condition_count() == cell.runs
            assert cell.all_terminated()

    def test_invalid_cells_reported_not_raised(self):
        engine = Engine(SPEC, "condition-kset")
        cells = engine.sweep({"d": (2, 99)}, runs_per_cell=1)
        assert cells[0].error is None
        assert cells[1].error is not None and "InvalidParameterError" in cells[1].error
        # The errored cell names the combination that failed, not the fallback spec.
        assert cells[1].overrides == {"d": 99}
        assert cells[0].overrides == {"d": 2}


class TestLegacyBridge:
    def test_for_algorithm_wraps_existing_instances(self):
        baseline = FloodMinKSetAgreement(t=4, k=2)
        engine = Engine.for_algorithm(baseline, n=8)
        result = engine.run(VECTOR)
        assert result.backend == "sync"
        assert result.in_condition is None  # FloodMin consults no condition
        assert result.distinct_decision_count() <= 2

    def test_sweep_rejected_on_instance_engines(self):
        engine = Engine.for_algorithm(FloodMinKSetAgreement(t=4, k=2), n=8)
        with pytest.raises(InvalidParameterError):
            engine.sweep({"d": (1, 2)})

    def test_measure_worst_rounds_rejects_mismatched_engine(self):
        from repro.analysis.rounds import measure_worst_rounds

        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            measure_worst_rounds(engine, SPEC.n, SPEC.t + 1, VECTOR, [], SPEC.k)

    def test_schedule_revalidated_after_garbage_collection(self):
        """A recycled id() must not let an invalid schedule skip validation."""
        from repro.exceptions import AdversaryError

        engine = Engine(SPEC, "condition-kset")
        for _ in range(50):
            engine.run(VECTOR, crashes_in_round_one(8, 2, delivered_prefix=4))
        bad = CrashSchedule.from_events(
            # 6 crashes with t = 4: must be rejected whatever address the
            # schedule object landed on.
            [crashes_in_round_one(8, 6, delivered_prefix=0).events[pid] for pid in range(2, 8)]
        )
        with pytest.raises(AdversaryError):
            engine.run(VECTOR, bad)

    def test_old_constructors_still_work(self):
        """The seed call path remains available, shim-free."""
        from repro import ConditionBasedKSetAgreement, SynchronousSystem

        algorithm = ConditionBasedKSetAgreement(
            condition=SPEC.condition_oracle(), t=SPEC.t, d=SPEC.d, k=SPEC.k
        )
        system = SynchronousSystem(n=SPEC.n, t=SPEC.t, algorithm=algorithm)
        old = system.run(VECTOR)
        new = Engine(SPEC, "condition-kset").run(VECTOR)
        assert old.decisions == new.decisions
        assert old.rounds_executed == new.duration


class TestPackageSurface:
    def test_dir_exposes_lazy_names(self):
        visible = dir(repro)
        for name in (
            "SynchronousSystem",
            "ConditionBasedKSetAgreement",
            "Engine",
            "AgreementSpec",
            "RunConfig",
            "RunResult",
        ):
            assert name in visible

    def test_lazy_names_resolve(self):
        assert repro.Engine is Engine
        assert repro.AgreementSpec is AgreementSpec

    def test_python_dash_m_repro(self):
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
        )
        assert completed.returncode == 0
        assert "E1" in completed.stdout and "E12" in completed.stdout
