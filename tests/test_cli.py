"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["run", "E3"]).experiment == "E3"
        assert parser.parse_args(["lattice", "--n", "4"]).n == 4
        demo = parser.parse_args(["demo", "--n", "6", "--t", "3", "--crashes", "1"])
        assert demo.n == 6 and demo.t == 3 and demo.crashes == 1
        conditions = parser.parse_args(
            ["conditions", "check", "hamming-ball", "--param", "radius=1"]
        )
        assert conditions.action == "check"
        assert conditions.family == "hamming-ball"
        assert conditions.param == ["radius=1"]
        check = parser.parse_args(
            ["check", "--n", "4", "--t", "1", "--d", "1", "--k", "1", "--workers", "2"]
        )
        assert check.command == "check"
        assert check.n == 4 and check.workers == 2 and check.differential is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E12" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E3"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 3" in output
        assert "[PASS]" in output

    def test_run_unknown_experiment(self, capsys):
        # Regression (raise-builtin): this used to escape main() as a bare
        # KeyError traceback; it is now a ReproError -> exit-2 diagnostic.
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_lattice_ascii(self, capsys):
        assert main(["lattice", "--n", "4"]) == 0
        output = capsys.readouterr().out
        assert "wait-free line" in output

    def test_lattice_dot(self, capsys):
        assert main(["lattice", "--n", "3", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_demo(self, capsys):
        assert main(["demo", "--n", "6", "--t", "3", "--d", "1", "--k", "2", "--crashes", "1"]) == 0
        output = capsys.readouterr().out
        assert "decisions" in output
        assert "rounds executed" in output

    def test_demo_with_condition_family(self, capsys):
        assert main(
            [
                "demo", "--n", "6", "--t", "2", "--d", "1", "--k", "2",
                "--condition", "hamming-ball", "--param", "radius=1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "ball(center=[10]*6, r=1, l=1)" in output
        assert "in the condition : True" in output

    def test_conditions_list(self, capsys):
        assert main(["conditions"]) == 0
        output = capsys.readouterr().out
        for family in ("max-legal", "min-legal", "frequency-gap", "hamming-ball", "all-vectors"):
            assert family in output

    def test_conditions_describe(self, capsys):
        assert main(
            ["conditions", "describe", "min-legal", "--n", "5", "--t", "2", "--d", "1", "--m", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "min_1-legal(x=1, n=5, m=3)" in output
        assert "size" in output and "member" in output

    def test_conditions_check_legal_family(self, capsys):
        assert main(
            ["conditions", "check", "frequency-gap", "--n", "5", "--t", "2", "--d", "1", "--m", "3"]
        ) == 0
        assert "(1, 1)-legal" in capsys.readouterr().out

    def test_conditions_check_illegal_family_fails(self, capsys):
        # C_all with x = 1 >= l = 1 is not legal (Theorem 9): exit code 1.
        assert main(
            ["conditions", "check", "all-vectors", "--n", "4", "--t", "2", "--d", "1", "--m", "3"]
        ) == 1
        assert "not (1, 1)-legal" in capsys.readouterr().out

    def test_conditions_action_requires_family(self, capsys):
        assert main(["conditions", "describe"]) == 2
        assert "needs a family name" in capsys.readouterr().err

    def test_algorithms_lists_condition_registry(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "conditions:" in output and "max-legal" in output


class TestCheckCommand:
    def test_check_passes_on_a_small_exhaustive_cell(self, capsys):
        assert main(
            ["check", "--n", "3", "--t", "1", "--d", "1", "--k", "1", "--m", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "37 schedules" in output
        assert "verdict          : PASS" in output

    def test_check_fails_on_a_broken_algorithm_and_stores_counterexamples(
        self, capsys, tmp_path
    ):
        from repro.check import MUTANT_HASTY_FLOODMIN, register_mutants
        from repro.store import ResultStore

        register_mutants()
        store_path = tmp_path / "ce.jsonl"
        assert main(
            [
                "check", "--n", "3", "--t", "1", "--d", "1", "--k", "1", "--m", "2",
                "--algorithm", MUTANT_HASTY_FLOODMIN, "--store", str(store_path),
            ]
        ) == 1
        output = capsys.readouterr().out
        assert "verdict          : FAIL" in output
        assert "counterexample records" in output
        assert ResultStore(store_path).load_counterexamples()

    def test_check_differential_mode(self, capsys):
        assert main(
            [
                "check", "--n", "3", "--t", "1", "--d", "1", "--k", "1", "--m", "2",
                "--differential", "condition-kset",
            ]
        ) == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_check_differential_unknown_algorithm(self, capsys):
        assert main(
            ["check", "--n", "3", "--t", "1", "--d", "1", "--k", "1",
             "--differential", "nope"]
        ) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_check_differential_rejects_workers_and_store(self, capsys):
        base = ["check", "--n", "3", "--t", "1", "--d", "1", "--k", "1",
                "--differential", "floodmin"]
        assert main(base + ["--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(base + ["--store", "nope.jsonl"]) == 2
        assert "--store" in capsys.readouterr().err
