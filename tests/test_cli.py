"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["run", "E3"]).experiment == "E3"
        assert parser.parse_args(["lattice", "--n", "4"]).n == 4
        demo = parser.parse_args(["demo", "--n", "6", "--t", "3", "--crashes", "1"])
        assert demo.n == 6 and demo.t == 3 and demo.crashes == 1


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E12" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E3"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 3" in output
        assert "[PASS]" in output

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_lattice_ascii(self, capsys):
        assert main(["lattice", "--n", "4"]) == 0
        output = capsys.readouterr().out
        assert "wait-free line" in output

    def test_lattice_dot(self, capsys):
        assert main(["lattice", "--n", "3", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_demo(self, capsys):
        assert main(["demo", "--n", "6", "--t", "3", "--d", "1", "--k", "2", "--crashes", "1"]) == 0
        output = capsys.readouterr().out
        assert "decisions" in output
        assert "rounds executed" in output
