"""Unit tests for the Figure 1 lattice object."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import LegalityClass
from repro.core.lattice import ConditionLattice
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_node_count(self):
        lattice = ConditionLattice(5)
        # x in [0, 4], l in [1, 4] → 5 * 4 nodes.
        assert len(lattice.classes()) == 20
        assert lattice.n == 5

    def test_needs_at_least_two_processes(self):
        with pytest.raises(InvalidParameterError):
            ConditionLattice(1)

    def test_cell_metadata(self):
        lattice = ConditionLattice(4)
        cell = lattice.cell(3, 1)
        assert cell.on_wait_free_line
        assert not cell.on_reliable_line
        assert not cell.contains_all_vectors
        cell0 = lattice.cell(0, 1)
        assert cell0.on_reliable_line
        assert cell0.contains_all_vectors
        with pytest.raises(InvalidParameterError):
            lattice.cell(9, 1)


class TestOrder:
    def test_reachability_matches_closed_form(self):
        lattice = ConditionLattice(5)
        for smaller in lattice.classes():
            for larger in lattice.classes():
                assert lattice.includes(smaller, larger) == smaller.is_subclass_of(larger)

    def test_chains(self):
        lattice = ConditionLattice(4)
        fixed_ell = lattice.chain_fixed_ell(2)
        assert [cls.x for cls in fixed_ell] == [3, 2, 1, 0]
        assert all(
            fixed_ell[i].is_subclass_of(fixed_ell[i + 1])
            for i in range(len(fixed_ell) - 1)
        )
        fixed_x = lattice.chain_fixed_x(2)
        assert [cls.ell for cls in fixed_x] == [1, 2, 3]

    def test_frontier(self):
        lattice = ConditionLattice(5)
        frontier = lattice.all_vectors_frontier()
        assert LegalityClass(0, 1) in frontier
        assert all(cls.ell == cls.x + 1 for cls in frontier)
        assert all(cls.contains_all_vectors_condition() for cls in frontier)

    def test_inclusion_matrix(self):
        lattice = ConditionLattice(3)
        matrix = lattice.inclusion_matrix()
        assert matrix[(LegalityClass(2, 1), LegalityClass(0, 2))] is True
        assert matrix[(LegalityClass(0, 2), LegalityClass(2, 1))] is False


class TestRendering:
    def test_ascii_matrix_shape(self):
        lattice = ConditionLattice(4)
        text = lattice.ascii_matrix()
        assert "wait-free line" in text
        assert "reliable line" in text
        # One header line, one separator, n rows, blank, legend.
        assert len(text.splitlines()) == 2 + 4 + 2

    def test_dot_output(self):
        lattice = ConditionLattice(3)
        dot = lattice.to_dot()
        assert dot.startswith("digraph")
        assert '"[0,1]"' in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")
