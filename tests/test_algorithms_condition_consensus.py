"""Tests for the k = l = 1 special case: condition-based synchronous consensus."""

from __future__ import annotations

import pytest

from repro.algorithms.condition_consensus import ConditionBasedConsensus
from repro.analysis.properties import assert_execution_correct
from repro.core.conditions import MaxLegalCondition
from repro.exceptions import InvalidParameterError
from repro.sync.adversary import crashes_in_round_one, no_crashes, staggered_schedule
from repro.sync.runtime import SynchronousSystem
from repro.workloads.vectors import vector_in_max_condition, vector_outside_max_condition


class TestConstruction:
    def test_requires_degree_one_condition(self):
        condition = MaxLegalCondition(n=6, domain=8, x=2, ell=2)
        with pytest.raises(InvalidParameterError):
            ConditionBasedConsensus(condition=condition, t=4, d=2)

    def test_bounds(self):
        condition = MaxLegalCondition(n=6, domain=8, x=2, ell=1)
        consensus = ConditionBasedConsensus(condition=condition, t=4, d=2)
        assert consensus.k == 1
        assert consensus.consensus_decision_round() == 3  # d + 1
        assert consensus.fallback_round() == 5  # t + 1
        assert "consensus" in consensus.name


class TestBehaviour:
    def run_case(self, n, m, t, d, schedule, inside=True, seed=0):
        condition = MaxLegalCondition(n=n, domain=m, x=t - d, ell=1)
        consensus = ConditionBasedConsensus(condition=condition, t=t, d=d)
        if inside:
            vector = vector_in_max_condition(n, m, t - d, 1, seed)
        else:
            vector = vector_outside_max_condition(n, m, t - d, 1, seed)
        result = SynchronousSystem(n, t, consensus).run(vector, schedule)
        return consensus, vector, result

    def test_fast_path_two_rounds(self):
        consensus, vector, result = self.run_case(8, 10, 4, 2, no_crashes())
        assert_execution_correct(result, vector, k=1, round_bound=2)

    def test_in_condition_within_d_plus_one(self):
        for d in (1, 2, 3):
            consensus, vector, result = self.run_case(
                8, 10, 4, d, crashes_in_round_one(8, 4, delivered_prefix=0)
            )
            assert_execution_correct(
                result, vector, k=1, round_bound=max(2, d + 1)
            )

    def test_outside_condition_within_t_plus_one(self):
        consensus, vector, result = self.run_case(
            8, 12, 4, 2, staggered_schedule(8, 4), inside=False
        )
        assert_execution_correct(result, vector, k=1, round_bound=consensus.fallback_round())

    def test_single_decided_value_always(self):
        """Consensus: exactly one value decided, whatever the schedule."""
        for seed in range(5):
            consensus, vector, result = self.run_case(
                8, 10, 4, 2, staggered_schedule(8, 4), seed=seed
            )
            assert result.distinct_decision_count() == 1
