"""Unit tests for the synchronous execution engine and the model guarantees."""

from __future__ import annotations

from typing import Any, Mapping

import pytest

from repro.core.vectors import InputVector
from repro.exceptions import InvalidParameterError, ProtocolStateError, SimulationError
from repro.sync.adversary import (
    CrashEvent,
    CrashSchedule,
    crashes_in_round_one,
    no_crashes,
)
from repro.sync.messages import Message
from repro.sync.process import RoundBasedProcess, SynchronousAlgorithm
from repro.sync.runtime import SynchronousSystem


class EchoProcess(RoundBasedProcess):
    """Test algorithm: record who was heard each round, decide at a fixed round."""

    def __init__(self, process_id: int, n: int, t: int, decide_round: int) -> None:
        super().__init__(process_id, n, t)
        self.heard: dict[int, frozenset[int]] = {}
        self._decide_round = decide_round

    def message_for_round(self, round_number: int) -> Any:
        return (self.process_id, round_number, self.proposal)

    def receive_round(self, round_number: int, messages: Mapping[int, Any]) -> None:
        self.heard[round_number] = frozenset(messages)
        for sender, payload in messages.items():
            assert payload[0] == sender
            assert payload[1] == round_number
        if round_number == self._decide_round:
            self.decide(self.proposal, round_number)


class EchoAlgorithm(SynchronousAlgorithm):
    def __init__(self, decide_round: int = 2) -> None:
        self._decide_round = decide_round

    def create_process(self, process_id: int, n: int, t: int) -> EchoProcess:
        return EchoProcess(process_id, n, t, self._decide_round)

    def max_rounds(self, n: int, t: int) -> int:
        return self._decide_round


class NeverDecides(SynchronousAlgorithm):
    class _Process(RoundBasedProcess):
        def message_for_round(self, round_number: int) -> Any:
            return None

        def receive_round(self, round_number: int, messages: Mapping[int, Any]) -> None:
            return None

    def create_process(self, process_id: int, n: int, t: int) -> RoundBasedProcess:
        return self._Process(process_id, n, t)

    def max_rounds(self, n: int, t: int) -> int:
        return 3


class TestMessage:
    def test_validation(self):
        Message(0, 1, 1, "payload")
        with pytest.raises(InvalidParameterError):
            Message(-1, 0, 1, None)
        with pytest.raises(InvalidParameterError):
            Message(0, 0, 0, None)

    def test_validation_speaks_the_repro_hierarchy(self):
        """Regression (raise-builtin): Message used to raise bare ValueError,
        which the CLI's ReproError handler cannot translate into exit code 2."""
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            Message(0, -1, 1, None)


class TestProcessBase:
    def test_identity_checks(self):
        with pytest.raises(ProtocolStateError):
            EchoProcess(5, 3, 1, 2)

    def test_double_decision_rejected(self):
        process = EchoProcess(0, 3, 1, 1)
        process.initialize("v")
        process.decide("v", 1)
        with pytest.raises(ProtocolStateError):
            process.decide("w", 2)

    def test_halt_without_decision(self):
        process = EchoProcess(0, 3, 1, 5)
        process.halt()
        assert process.has_halted()
        assert not process.has_decided()

    def test_repr_shows_state(self):
        process = EchoProcess(0, 3, 1, 1)
        assert "running" in repr(process)
        process.decide(1, 1)
        assert "decided" in repr(process)


class TestSystemConstruction:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            SynchronousSystem(0, 0, EchoAlgorithm())
        with pytest.raises(InvalidParameterError):
            SynchronousSystem(3, 3, EchoAlgorithm())
        with pytest.raises(InvalidParameterError):
            SynchronousSystem(3, -1, EchoAlgorithm())

    def test_proposal_normalisation(self):
        system = SynchronousSystem(3, 1, EchoAlgorithm())
        by_list = system.run(["a", "b", "c"])
        by_vector = system.run(InputVector(["a", "b", "c"]))
        by_mapping = system.run({0: "a", 1: "b", 2: "c"})
        assert by_list.input_vector == by_vector.input_vector == by_mapping.input_vector

    def test_wrong_proposal_count(self):
        system = SynchronousSystem(3, 1, EchoAlgorithm())
        with pytest.raises(InvalidParameterError):
            system.run(["a", "b"])
        with pytest.raises(InvalidParameterError):
            system.run({0: "a", 2: "c"})


class TestFailureFreeExecution:
    def test_everyone_hears_everyone(self):
        system = SynchronousSystem(4, 1, EchoAlgorithm(decide_round=2), record_trace=True)
        result = system.run([1, 2, 3, 4])
        assert result.rounds_executed == 2
        assert result.all_correct_decided()
        assert result.decisions == {0: 1, 1: 2, 2: 3, 3: 4}
        assert result.decision_rounds == {pid: 2 for pid in range(4)}
        assert result.failure_count == 0
        assert result.correct_processes == frozenset(range(4))
        trace = result.trace
        assert trace is not None and len(trace) == 2
        for record in trace:
            for pid in range(4):
                assert record.senders_heard_by(pid) == frozenset(range(4))

    def test_trace_optional(self):
        system = SynchronousSystem(3, 1, EchoAlgorithm())
        assert system.run([1, 1, 1]).trace is None

    def test_summary_string(self):
        system = SynchronousSystem(3, 1, EchoAlgorithm())
        result = system.run([1, 1, 1])
        assert "n=3" in result.summary()
        assert "rounds=2" in result.summary()


class TestCrashSemantics:
    def test_initially_crashed_process_is_never_heard(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm(decide_round=2), record_trace=True)
        schedule = crashes_in_round_one(4, 1, delivered_prefix=0)  # crash p3
        result = system.run([1, 2, 3, 4], schedule)
        assert result.crash_rounds == {3: 1}
        assert 3 not in result.decisions
        for record in result.trace:
            for pid in (0, 1, 2):
                assert 3 not in record.senders_heard_by(pid)

    def test_round_one_prefix_delivery(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm(decide_round=2), record_trace=True)
        schedule = CrashSchedule.from_events([CrashEvent.round_one_prefix(3, 2)])
        result = system.run([1, 2, 3, 4], schedule)
        round1 = result.trace.round(1)
        assert 3 in round1.senders_heard_by(0)
        assert 3 in round1.senders_heard_by(1)
        assert 3 not in round1.senders_heard_by(2)

    def test_non_prefix_round_one_rejected(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm())
        schedule = CrashSchedule.from_events([CrashEvent(3, 1, frozenset({1, 2}))])
        with pytest.raises(Exception):
            system.run([1, 2, 3, 4], schedule)

    def test_later_round_subset_delivery(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm(decide_round=3), record_trace=True)
        schedule = CrashSchedule.from_events([CrashEvent(0, 2, frozenset({2}))])
        result = system.run([1, 2, 3, 4], schedule)
        round2 = result.trace.round(2)
        assert 0 in round2.senders_heard_by(2)
        assert 0 not in round2.senders_heard_by(1)
        round3 = result.trace.round(3)
        assert 0 not in round3.senders_heard_by(2)
        assert result.crash_rounds == {0: 2}

    def test_crashed_process_takes_no_computation_step(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm(decide_round=2))
        schedule = CrashSchedule.from_events([CrashEvent.initially_crashed(2)])
        result = system.run([1, 2, 3, 4], schedule)
        assert 2 not in result.decisions
        assert 2 not in result.decision_rounds

    def test_schedule_validated_against_t(self):
        system = SynchronousSystem(4, 1, EchoAlgorithm())
        schedule = crashes_in_round_one(4, 2, delivered_prefix=0)
        with pytest.raises(Exception):
            system.run([1, 2, 3, 4], schedule)

    def test_too_many_crashes_rejected(self):
        system = SynchronousSystem(4, 2, EchoAlgorithm())
        schedule = crashes_in_round_one(4, 3, delivered_prefix=0)
        with pytest.raises(Exception):
            system.run([1, 2, 3, 4], schedule)


class TestWatchdog:
    def test_non_terminating_algorithm_detected(self):
        system = SynchronousSystem(3, 1, NeverDecides())
        with pytest.raises(SimulationError):
            system.run([1, 2, 3])

    def test_max_round_override(self):
        system = SynchronousSystem(3, 1, EchoAlgorithm(decide_round=4), max_rounds=2)
        with pytest.raises(SimulationError):
            system.run([1, 2, 3])

    def test_everyone_crashed_stops_early(self):
        system = SynchronousSystem(3, 2, EchoAlgorithm(decide_round=5), max_rounds=10)
        schedule = no_crashes()
        # Not actually possible to crash everybody with t < n; instead check
        # that halting processes stop the loop before max_rounds.
        result = SynchronousSystem(3, 2, EchoAlgorithm(decide_round=1)).run(
            [1, 2, 3], schedule
        )
        assert result.rounds_executed == 1
        del system
