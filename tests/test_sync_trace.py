"""Unit tests for execution traces."""

from __future__ import annotations

from repro.sync.trace import ExecutionTrace, RoundRecord


class TestRoundRecord:
    def test_accessors(self):
        record = RoundRecord(
            round_number=2,
            senders=(0, 1),
            delivered={0: {1: "x"}, 1: {0: "y", 1: "z"}},
            crashed=(2,),
            decisions={0: "x"},
            active_after=(1,),
        )
        assert record.messages_received_by(1) == {0: "y", 1: "z"}
        assert record.messages_received_by(5) == {}
        assert record.senders_heard_by(0) == frozenset({1})
        assert record.senders_heard_by(9) == frozenset()


class TestExecutionTrace:
    def build(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.record(
            RoundRecord(1, senders=(0, 1), delivered={0: {0: "a", 1: "b"}}, decisions={})
        )
        trace.record(
            RoundRecord(2, senders=(0,), delivered={1: {0: "a"}}, decisions={1: "a"})
        )
        trace.record(RoundRecord(3, senders=(), delivered={}, decisions={0: "a"}))
        return trace

    def test_round_lookup(self):
        trace = self.build()
        assert len(trace) == 3
        assert trace.round(2).round_number == 2
        assert [record.round_number for record in trace] == [1, 2, 3]

    def test_total_messages(self):
        assert self.build().total_messages() == 3

    def test_decision_timeline(self):
        assert self.build().decision_timeline() == {1: 2, 0: 3}
