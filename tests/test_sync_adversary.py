"""Unit tests for crash events, schedules and adversary factories."""

from __future__ import annotations

from random import Random

import pytest

from repro.exceptions import AdversaryError
from repro.sync.adversary import (
    CrashEvent,
    CrashSchedule,
    crashes_in_round_one,
    initial_crashes,
    no_crashes,
    random_schedule,
    staggered_schedule,
)


class TestCrashEvent:
    def test_basic_event(self):
        event = CrashEvent(2, 3, frozenset({0, 4}))
        assert event.process_id == 2
        assert event.round_number == 3
        assert event.delivered_to == frozenset({0, 4})

    def test_validation(self):
        with pytest.raises(AdversaryError):
            CrashEvent(-1, 1)
        with pytest.raises(AdversaryError):
            CrashEvent(0, 0)

    def test_initially_crashed(self):
        event = CrashEvent.initially_crashed(4)
        assert event.round_number == 1
        assert event.delivered_to == frozenset()
        assert event.is_prefix_delivery()

    def test_round_one_prefix(self):
        event = CrashEvent.round_one_prefix(4, 3)
        assert event.delivered_to == frozenset({0, 1, 2})
        assert event.is_prefix_delivery()
        with pytest.raises(AdversaryError):
            CrashEvent.round_one_prefix(4, -1)

    def test_is_prefix_delivery(self):
        assert CrashEvent(0, 2, frozenset({0, 1})).is_prefix_delivery()
        assert not CrashEvent(0, 2, frozenset({1, 2})).is_prefix_delivery()


class TestCrashSchedule:
    def test_from_events_rejects_duplicates(self):
        with pytest.raises(AdversaryError):
            CrashSchedule.from_events(
                [CrashEvent.initially_crashed(1), CrashEvent(1, 2)]
            )

    def test_queries(self):
        schedule = CrashSchedule.from_events(
            [
                CrashEvent.initially_crashed(5),
                CrashEvent.round_one_prefix(4, 2),
                CrashEvent(3, 2, frozenset({0})),
            ]
        )
        assert len(schedule) == 3
        assert schedule.crash_count() == 3
        assert schedule.crash_round(5) == 1
        assert schedule.crash_round(0) is None
        assert {event.process_id for event in schedule.crashes_in_round(1)} == {4, 5}
        assert schedule.initial_crash_count() == 1
        assert schedule.round_one_crash_count() == 2
        assert {event.process_id for event in schedule} == {3, 4, 5}

    def test_validate_crash_budget(self):
        schedule = CrashSchedule.from_events(
            [CrashEvent.initially_crashed(0), CrashEvent.initially_crashed(1)]
        )
        schedule.validate(n=4, t=2)
        with pytest.raises(AdversaryError):
            schedule.validate(n=4, t=1)

    def test_validate_process_ids(self):
        schedule = CrashSchedule.from_events([CrashEvent.initially_crashed(9)])
        with pytest.raises(AdversaryError):
            schedule.validate(n=4, t=2)
        schedule = CrashSchedule.from_events([CrashEvent(0, 2, frozenset({7}))])
        with pytest.raises(AdversaryError):
            schedule.validate(n=4, t=2)

    def test_validate_round_one_prefix_rule(self):
        bad = CrashSchedule.from_events([CrashEvent(0, 1, frozenset({2, 3}))])
        with pytest.raises(AdversaryError):
            bad.validate(n=4, t=2)
        good = CrashSchedule.from_events([CrashEvent(0, 2, frozenset({2, 3}))])
        good.validate(n=4, t=2)


class TestFactories:
    def test_no_crashes(self):
        schedule = no_crashes()
        assert schedule.crash_count() == 0
        schedule.validate(n=3, t=0)

    def test_initial_crashes_requires_ids(self):
        with pytest.raises(AdversaryError):
            initial_crashes(2)
        schedule = initial_crashes(2, process_ids=[4, 5, 6])
        assert schedule.crash_count() == 2
        assert schedule.initial_crash_count() == 2
        with pytest.raises(AdversaryError):
            initial_crashes(3, process_ids=[0])

    def test_crashes_in_round_one(self):
        schedule = crashes_in_round_one(6, 2, delivered_prefix=3)
        assert schedule.crash_count() == 2
        assert {event.process_id for event in schedule} == {4, 5}
        assert all(event.delivered_to == frozenset({0, 1, 2}) for event in schedule)
        schedule.validate(n=6, t=2)
        with pytest.raises(AdversaryError):
            crashes_in_round_one(3, 5)

    def test_crashes_in_round_one_start_id(self):
        schedule = crashes_in_round_one(6, 2, delivered_prefix=0, start_id=1)
        assert {event.process_id for event in schedule} == {1, 2}

    def test_random_schedule_is_deterministic_and_valid(self):
        first = random_schedule(8, 4, 3, max_round=4, rng=42)
        second = random_schedule(8, 4, 3, max_round=4, rng=42)
        assert {e.process_id: (e.round_number, e.delivered_to) for e in first} == {
            e.process_id: (e.round_number, e.delivered_to) for e in second
        }
        first.validate(n=8, t=4)
        assert first.crash_count() == 3

    def test_random_schedule_validation(self):
        with pytest.raises(AdversaryError):
            random_schedule(8, 2, 3, max_round=2)
        with pytest.raises(AdversaryError):
            random_schedule(2, 2, 3, max_round=2)
        with pytest.raises(AdversaryError):
            random_schedule(8, 4, 2, max_round=0)

    def test_random_schedule_accepts_random_instance(self):
        rng = Random(7)
        schedule = random_schedule(6, 3, 2, max_round=3, rng=rng)
        schedule.validate(n=6, t=3)

    def test_staggered_schedule(self):
        schedule = staggered_schedule(8, 4, per_round=1)
        schedule.validate(n=8, t=4)
        assert schedule.crash_count() == 4
        rounds = sorted(event.round_number for event in schedule)
        assert rounds == [1, 2, 3, 4]

    def test_staggered_schedule_per_round(self):
        schedule = staggered_schedule(9, 4, per_round=2)
        schedule.validate(n=9, t=4)
        assert schedule.crash_count() == 4
        assert len(schedule.crashes_in_round(1)) == 2
        assert len(schedule.crashes_in_round(2)) == 2

    def test_staggered_schedule_round_one_prefixes_shrink(self):
        schedule = staggered_schedule(6, 3, per_round=3)
        prefixes = sorted(len(event.delivered_to) for event in schedule.crashes_in_round(1))
        assert len(prefixes) == 3
        assert len(set(prefixes)) == 3  # distinct shrinking prefixes

    def test_staggered_requires_positive_per_round(self):
        with pytest.raises(AdversaryError):
            staggered_schedule(6, 3, per_round=0)
