"""Integration tests for the experiment harness (E1–E14).

Each experiment must run end to end, produce rows, and — crucially — every
internal pass/fail check comparing the measurement to the paper's claim must
pass.  These tests are the "does the reproduction match the paper" gate.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentOutput,
    experiment_agreement_stress,
    experiment_all_vectors_frontier,
    experiment_async_solvability,
    experiment_baseline_comparison,
    experiment_condition_families,
    experiment_counting_theorem3,
    experiment_counting_theorem13,
    experiment_early_deciding,
    experiment_exhaustive_check,
    experiment_lattice_figure1,
    experiment_rounds_in_condition,
    experiment_rounds_outside_condition,
    experiment_special_cases,
    experiment_table1_legality,
    list_experiments,
    run_experiment,
)
from repro.exceptions import RegistryError


class TestRegistry:
    def test_all_sixteen_registered(self):
        assert len(EXPERIMENTS) == 16
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 17)}

    def test_list_experiments(self):
        listing = list_experiments()
        assert len(listing) == 16
        assert all(title for _, title in listing)

    def test_run_experiment_lookup(self):
        output = run_experiment("e3")
        assert isinstance(output, ExperimentOutput)
        with pytest.raises(RegistryError):
            run_experiment("E99")

    def test_unknown_experiment_speaks_the_repro_hierarchy(self):
        """Regression (raise-builtin): run_experiment used to raise bare
        KeyError, so `repro run bogus` crashed with a traceback instead of
        the CLI's exit-2 diagnostic."""
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="E99.*known ids"):
            run_experiment("E99")

    def test_cli_run_unknown_experiment_exits_2(self, capsys):
        from repro.cli import main

        assert main(["run", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_render_contains_table_and_checks(self):
        output = experiment_counting_theorem3(cases=((4, 3, 2),))
        text = output.render()
        assert "E3" in text
        assert "[PASS]" in text or "[FAIL]" in text


class TestFastExperiments:
    def test_e1_table1(self):
        output = experiment_table1_legality()
        assert output.all_checks_pass()
        assert len(output.rows) == 4

    def test_e2_lattice(self):
        output = experiment_lattice_figure1(n=4)
        assert output.all_checks_pass()
        assert len(output.rows) == 4

    def test_e3_counting(self):
        output = experiment_counting_theorem3(cases=((4, 3, 1), (5, 3, 2)))
        assert output.all_checks_pass()

    def test_e4_counting(self):
        output = experiment_counting_theorem13(cases=((4, 3, 2, 2), (5, 3, 3, 2)))
        assert output.all_checks_pass()

    def test_e5_frontier(self):
        output = experiment_all_vectors_frontier(n=3, m=2)
        assert output.all_checks_pass()

    def test_e10_early_deciding(self):
        output = experiment_early_deciding()
        assert output.all_checks_pass()
        assert len(output.rows) == 7  # f = 0..t


class TestSimulationExperiments:
    def test_e6_rounds_in_condition(self):
        output = experiment_rounds_in_condition(random_runs=3)
        assert output.all_checks_pass()
        assert all(row["worst measured"] <= row["bound ⌊(d+l−1)/k⌋+1"] for row in output.rows)

    def test_e7_rounds_outside_condition(self):
        output = experiment_rounds_outside_condition(random_runs=3)
        assert output.all_checks_pass()
        assert all(row["worst measured"] <= row["bound ⌊t/k⌋+1"] for row in output.rows)

    def test_e8_baseline_comparison(self):
        output = experiment_baseline_comparison()
        assert output.all_checks_pass()
        assert all(row["speed-up"] >= 1 for row in output.rows)

    def test_e9_special_cases(self):
        output = experiment_special_cases()
        assert output.all_checks_pass()

    def test_e11_agreement_stress(self):
        output = experiment_agreement_stress(runs=25)
        assert output.all_checks_pass()

    def test_e12_async(self):
        output = experiment_async_solvability()
        assert output.all_checks_pass()

    def test_e13_condition_families(self):
        output = experiment_condition_families(runs_per_family=3)
        assert output.all_checks_pass()
        families = {row["family"] for row in output.rows}
        assert {"max-legal", "min-legal", "frequency-gap", "hamming-ball", "all-vectors"} <= families
        assert all(row["worst sync rounds"] <= 2 for row in output.rows)

    def test_e14_exhaustive_check(self):
        output = experiment_exhaustive_check()
        assert output.all_checks_pass()
        assert all(row["violations"] == 0 for row in output.rows)
        # The grid must include a cell whose schedule space is in the thousands.
        assert max(row["schedules"] for row in output.rows) >= 2731
