"""Hypothesis property tests for the agreement algorithms.

Randomly generated input vectors and crash schedules must never violate
termination, validity, k-agreement, or the round bounds proved in the paper.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import crash_schedules
from strategies import vectors as vector_strategy

from repro.algorithms.classic_kset import FloodMinKSetAgreement
from repro.algorithms.condition_kset import ConditionBasedKSetAgreement
from repro.algorithms.early_deciding_kset import EarlyDecidingKSetAgreement
from repro.analysis.properties import assert_execution_correct, check_execution
from repro.core.conditions import MaxLegalCondition
from repro.core.hierarchy import rounds_in_condition, rounds_outside_condition
from repro.core.vectors import InputVector
from repro.sync.runtime import SynchronousSystem

# One fixed system shape keeps the state space meaningful while letting
# Hypothesis explore vectors and schedules freely.
N, M, T, D, ELL, K = 7, 8, 4, 2, 1, 2
X = T - D
CONDITION = MaxLegalCondition(N, M, X, ELL)
ALGORITHM = ConditionBasedKSetAgreement(condition=CONDITION, t=T, d=D, k=K)
LAST_ROUND = ALGORITHM.last_round()


vectors = vector_strategy(N, M)


def schedules():
    """The shared crash-schedule strategy bound to this module's system shape."""
    return crash_schedules(N, T, LAST_ROUND)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, schedules())
def test_condition_based_algorithm_is_always_safe(vector, schedule):
    """Termination, validity and k-agreement hold for every vector and schedule."""
    system = SynchronousSystem(N, T, ALGORITHM)
    result = system.run(vector, schedule)
    assert_execution_correct(result, vector, k=K, round_bound=LAST_ROUND)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, schedules())
def test_condition_based_round_bounds(vector, schedule):
    """The regime-specific round bounds of Theorem 10 hold."""
    system = SynchronousSystem(N, T, ALGORITHM)
    result = system.run(vector, schedule)
    in_condition = CONDITION.contains(vector)
    round_one_crashes = schedule.round_one_crash_count()
    initial_crashes = schedule.initial_crash_count()
    latest = result.max_decision_round_of_correct()
    if in_condition:
        if round_one_crashes <= X:
            assert latest <= 2
        else:
            assert latest <= min(rounds_in_condition(D, ELL, K), LAST_ROUND)
    else:
        assert latest <= rounds_outside_condition(T, K)
        if initial_crashes > X:
            assert latest <= min(rounds_in_condition(D, ELL, K), LAST_ROUND)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, schedules())
def test_floodmin_baseline_is_always_safe(vector, schedule):
    algorithm = FloodMinKSetAgreement(t=T, k=K)
    result = SynchronousSystem(N, T, algorithm).run(vector, schedule)
    assert_execution_correct(result, vector, k=K, round_bound=algorithm.decision_round())


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, schedules())
def test_early_deciding_baseline_is_always_safe(vector, schedule):
    algorithm = EarlyDecidingKSetAgreement(t=T, k=K)
    result = SynchronousSystem(N, T, algorithm).run(vector, schedule)
    assert_execution_correct(result, vector, k=K, round_bound=algorithm.last_round())
    # Adaptive bound with respect to the *actual* number of crashes.
    assert result.max_decision_round_of_correct() <= algorithm.early_bound(
        result.failure_count
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, schedules(), st.integers(min_value=0, max_value=2**16))
def test_executions_are_deterministic(vector, schedule, _salt):
    """The engine is a pure function of (vector, schedule)."""
    first = SynchronousSystem(N, T, ALGORITHM).run(vector, schedule)
    second = SynchronousSystem(N, T, ALGORITHM).run(vector, schedule)
    assert first.decisions == second.decisions
    assert first.decision_rounds == second.decision_rounds
    assert first.rounds_executed == second.rounds_executed


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(vectors)
def test_failure_free_runs_decide_in_two_rounds_in_condition(vector):
    """Failure-free + in-condition: the two-round fast path of Lemma 1."""
    result = SynchronousSystem(N, T, ALGORITHM).run(vector)
    report = check_execution(result, vector, K)
    assert report, report.failures
    if CONDITION.contains(vector):
        assert result.max_decision_round_of_correct() == 2
        decoded = CONDITION.decode(
            InputVector(vector.entries).restrict(range(N))
        )
        assert result.decided_values() <= decoded
