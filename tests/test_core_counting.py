"""Unit tests for the counting formulas (Theorems 3 and 13)."""

from __future__ import annotations

import pytest

from repro.core.counting import (
    brute_force_condition_size,
    condition_fraction,
    max_condition_size,
    nb_consensus_condition,
    surjections,
)
from repro.exceptions import InvalidParameterError


class TestSurjections:
    def test_small_values(self):
        assert surjections(0, 0) == 1
        assert surjections(3, 1) == 1
        assert surjections(3, 2) == 6
        assert surjections(3, 3) == 6
        assert surjections(4, 2) == 14
        assert surjections(4, 3) == 36

    def test_zero_when_k_exceeds_n(self):
        assert surjections(2, 3) == 0
        assert surjections(0, 1) == 0

    def test_relation_to_total_functions(self):
        # sum_k C(m, k) * Surj(n, k) over k = number of all functions = m^n.
        from math import comb

        n, m = 5, 3
        total = sum(comb(m, k) * surjections(n, k) for k in range(0, m + 1))
        assert total == m**n

    def test_negative_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            surjections(-1, 2)
        with pytest.raises(InvalidParameterError):
            surjections(2, -1)


class TestTheorem3:
    @pytest.mark.parametrize(
        "n,m,x",
        [(3, 2, 1), (4, 3, 1), (4, 3, 2), (5, 3, 2), (5, 4, 3), (6, 2, 3), (4, 5, 3)],
    )
    def test_matches_enumeration(self, n, m, x):
        assert nb_consensus_condition(n, m, x) == brute_force_condition_size(n, m, x, 1)

    def test_x_zero_gives_all_vectors(self):
        assert nb_consensus_condition(4, 3, 0) == 3**4
        assert nb_consensus_condition(5, 2, 0) == 2**5

    def test_single_value_domain(self):
        # With m = 1 the only vector is the constant one and it always qualifies.
        assert nb_consensus_condition(5, 1, 3) == 1

    def test_monotone_in_x(self):
        sizes = [nb_consensus_condition(5, 3, x) for x in range(0, 5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            nb_consensus_condition(0, 3, 0)
        with pytest.raises(InvalidParameterError):
            nb_consensus_condition(4, 0, 0)
        with pytest.raises(InvalidParameterError):
            nb_consensus_condition(4, 3, 4)
        with pytest.raises(InvalidParameterError):
            nb_consensus_condition(4, 3, -1)


class TestTheorem13:
    @pytest.mark.parametrize(
        "n,m,x,ell",
        [
            (3, 2, 1, 1),
            (4, 3, 2, 1),
            (4, 3, 2, 2),
            (4, 3, 1, 2),
            (5, 3, 2, 2),
            (5, 3, 3, 2),
            (5, 4, 3, 2),
            (5, 3, 2, 3),
            (6, 3, 4, 2),
            (6, 2, 3, 2),
            (4, 4, 2, 3),
        ],
    )
    def test_matches_enumeration(self, n, m, x, ell):
        assert max_condition_size(n, m, x, ell) == brute_force_condition_size(n, m, x, ell)

    def test_reduces_to_theorem3_for_ell1(self):
        for n, m, x in [(4, 3, 2), (5, 4, 3), (6, 2, 3)]:
            assert max_condition_size(n, m, x, 1) == nb_consensus_condition(n, m, x)

    def test_all_vectors_when_ell_exceeds_x(self):
        # When l > x the density property is vacuous: every vector qualifies.
        assert max_condition_size(4, 3, 1, 2) == 3**4
        assert max_condition_size(5, 3, 0, 1) == 3**5
        assert max_condition_size(5, 3, 2, 3) == 3**5

    def test_monotone_in_ell(self):
        sizes = [max_condition_size(5, 4, 3, ell) for ell in range(1, 5)]
        assert sizes == sorted(sizes)

    def test_monotone_in_x(self):
        sizes = [max_condition_size(5, 4, x, 2) for x in range(0, 5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_matches_oracle_size_method(self):
        from repro.core.conditions import MaxLegalCondition

        condition = MaxLegalCondition(5, 3, 3, 2)
        assert condition.size() == len(list(condition.enumerate_vectors()))


class TestFraction:
    def test_fraction_bounds(self):
        assert condition_fraction(5, 3, 0, 1) == 1.0
        assert 0 < condition_fraction(5, 3, 3, 1) < 1
        assert condition_fraction(5, 3, 2, 3) == 1.0

    def test_fraction_consistency(self):
        n, m, x, ell = 5, 3, 2, 2
        assert condition_fraction(n, m, x, ell) == pytest.approx(
            max_condition_size(n, m, x, ell) / m**n
        )
