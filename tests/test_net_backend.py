"""Tests for the synchronous message-passing backend (``repro.net``, PR 7).

Covers the explicit message matrix and its failure models (omission, loss,
delay, Byzantine corruption), the fault-space enumerator against its closed
forms, the engine/parallel/store/CLI/serve wiring, the applicability-gated
net oracles, the deliberately broken mutants the oracles must catch, and the
seed-determinism properties of the stochastic adversaries.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import AgreementSpec, Engine, RunConfig
from repro.api.registry import ALGORITHMS, AlgorithmEntry
from repro.check import (
    MUTANT_ECHOLESS_FLOODMIN,
    MUTANT_SILENT_FLOODMIN,
    NET_ORACLES,
    NetCheckContext,
    NetCounterexample,
    default_net_oracle_names,
    register_mutants,
)
from repro.exceptions import (
    BackendError,
    InvalidParameterError,
    RegistryError,
)
from repro.net import (
    BoundedDelayAdversary,
    ByzantineCorruptAdversary,
    EnumeratedCorruption,
    EnumeratedDelay,
    EnumeratedMessageLoss,
    FaultFreeAdversary,
    MessageLossAdversary,
    NetSystem,
    ReceiveOmissionAdversary,
    SendOmissionAdversary,
    adversary_from_record,
    available_net_adversaries,
    count_faults,
    enumerate_faults,
    resolve_net_adversary,
)
from repro.store import ResultStore
from repro.sync.runtime import SynchronousSystem
from repro.workloads.scenarios import net_scenario

from strategies import lost_message_sets, omission_assignments

SPEC = AgreementSpec(n=4, t=1, k=1, domain=4)
TINY = AgreementSpec(n=3, t=1, k=1, domain=3)


def _floodmin(spec: AgreementSpec):
    from repro.algorithms.classic_kset import FloodMinKSetAgreement

    return FloodMinKSetAgreement(t=spec.t, k=spec.k)


# ----------------------------------------------------------------------
# Adversary unit behaviour
# ----------------------------------------------------------------------
class TestNetAdversaries:
    def test_registry_lists_every_family(self):
        assert available_net_adversaries() == (
            "bounded-delay",
            "byzantine-corrupt",
            "fault-free",
            "message-loss",
            "receive-omission",
            "send-omission",
        )

    def test_resolve_by_name_and_instance(self):
        by_name = resolve_net_adversary("fault-free", 3, 1, 0)
        assert isinstance(by_name, FaultFreeAdversary)
        instance = SendOmissionAdversary({0: {1}})
        assert resolve_net_adversary(instance, 3, 1, 0) is instance
        with pytest.raises(RegistryError):
            resolve_net_adversary("no-such-model", 3, 1, 0)

    def test_omission_assignments_are_validated(self):
        with pytest.raises(InvalidParameterError):
            SendOmissionAdversary({0: set()})  # empty receiver set
        with pytest.raises(InvalidParameterError):
            SendOmissionAdversary({0: {0}})  # self-channel
        with pytest.raises(InvalidParameterError):
            ReceiveOmissionAdversary({2: {2}})

    def test_faulty_sets_are_the_victims(self):
        assert SendOmissionAdversary({0: {1}, 2: {0}}).faulty == frozenset({0, 2})
        assert ReceiveOmissionAdversary({1: {0}}).faulty == frozenset({1})
        # Message-granular models blame no process.
        assert MessageLossAdversary(p=0.5, seed=1).faulty == frozenset()
        assert FaultFreeAdversary().faulty == frozenset()

    def test_fault_record_round_trips_each_family(self):
        adversaries = [
            FaultFreeAdversary(),
            SendOmissionAdversary({0: {1, 2}}),
            ReceiveOmissionAdversary({1: {0}}),
            MessageLossAdversary(p=0.25, seed=9),
            EnumeratedMessageLoss({(1, 0, 1), (2, 2, 0)}),
            BoundedDelayAdversary(d_max=2, seed=3),
            EnumeratedDelay({(1, 0, 1): 1, (2, 1, 2): 2}),
            ByzantineCorruptAdversary(limit=1, p=0.3, seed=4),
            EnumeratedCorruption({(1, 0, 1): 2}),
        ]
        for adversary in adversaries:
            rebuilt = adversary_from_record(adversary.fault_record())
            assert type(rebuilt) is type(adversary)
            assert rebuilt.fault_record() == adversary.fault_record()

    def test_enumerated_variants_reject_self_channels(self):
        with pytest.raises(InvalidParameterError):
            EnumeratedMessageLoss({(1, 2, 2)})
        with pytest.raises(InvalidParameterError):
            EnumeratedDelay({(1, 1, 1): 1})
        with pytest.raises(InvalidParameterError):
            EnumeratedCorruption({(1, 0, 0): 1})
        with pytest.raises(InvalidParameterError):
            # Corrupting with the sender's own payload is a delivery.
            EnumeratedCorruption({(1, 0, 1): 0})


# ----------------------------------------------------------------------
# Fault-space enumeration against the closed forms
# ----------------------------------------------------------------------
class TestFaultEnumeration:
    @pytest.mark.parametrize(
        "family", ["send-omission", "receive-omission", "message-loss"]
    )
    @pytest.mark.parametrize("n,rounds,max_faults", [(3, 2, 1), (3, 2, 2), (4, 2, 1)])
    def test_enumeration_matches_closed_form(self, family, n, rounds, max_faults):
        enumerated = list(enumerate_faults(family, n, rounds, max_faults))
        assert len(enumerated) == count_faults(family, n, rounds, max_faults)

    @pytest.mark.parametrize("family", ["bounded-delay", "byzantine-corrupt"])
    def test_delay_and_corruption_closed_forms(self, family):
        enumerated = list(enumerate_faults(family, 3, 2, 1))
        assert len(enumerated) == count_faults(family, 3, 2, 1)

    def test_bounded_delay_respects_d_max(self):
        singles = count_faults("bounded-delay", 3, 2, 1, d_max=1)
        doubles = count_faults("bounded-delay", 3, 2, 1, d_max=2)
        assert doubles > singles
        assert len(list(enumerate_faults("bounded-delay", 3, 2, 1, d_max=2))) == doubles

    def test_enumeration_is_deterministic_and_fault_free_first(self):
        first = [a.fault_record() for a in enumerate_faults("send-omission", 3, 2, 1)]
        second = [a.fault_record() for a in enumerate_faults("send-omission", 3, 2, 1)]
        assert first == second
        assert first[0]["assignment"] == []

    def test_unknown_family_and_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_faults("no-such-model", 3, 2, 1))
        with pytest.raises(InvalidParameterError):
            count_faults("message-loss", 3, 0, 1)
        with pytest.raises(InvalidParameterError):
            count_faults("message-loss", 3, 2, -1)


# ----------------------------------------------------------------------
# The runtime: message matrix semantics
# ----------------------------------------------------------------------
class TestNetSystem:
    def test_fault_free_matches_the_sync_backend(self):
        algorithm = _floodmin(SPEC)
        vector = [3, 1, 4, 2]
        net = NetSystem(SPEC.n, SPEC.t, algorithm).run(vector, FaultFreeAdversary())
        sync = SynchronousSystem(SPEC.n, SPEC.t, algorithm).run(vector)
        assert net.decisions == sync.decisions
        assert net.rounds_executed == sync.rounds_executed
        assert net.fault_events == ()
        assert net.all_correct_decided()

    def test_send_omission_drops_the_victims_channels(self):
        adversary = SendOmissionAdversary({0: {1, 2}})
        result = NetSystem(SPEC.n, SPEC.t, _floodmin(SPEC)).run([1, 2, 3, 4], adversary)
        dropped = {(e.sender, e.receiver) for e in result.fault_events}
        assert dropped == {(0, 1), (0, 2)}
        assert all(e.outcome == "dropped" for e in result.fault_events)
        assert result.faulty == frozenset({0})
        # FloodMin survives a static send-omission victim: the relay holds.
        assert result.distinct_decision_count() <= SPEC.k

    def test_self_channels_are_untouchable(self):
        # Even a certain-loss adversary cannot cut a process off from itself.
        result = NetSystem(TINY.n, TINY.t, _floodmin(TINY)).run(
            [1, 2, 3], MessageLossAdversary(p=1.0, seed=0)
        )
        assert all(
            e.sender != e.receiver for e in result.fault_events
        )
        # n self-deliveries per round still happen.
        assert result.delivered_count == TINY.n * result.rounds_executed

    def test_byzantine_corruption_equivocates(self):
        adversary = EnumeratedCorruption({(1, 0, 1): 2})
        result = NetSystem(TINY.n, TINY.t, _floodmin(TINY)).run([5, 7, 9], adversary)
        (event,) = result.fault_events
        assert (event.outcome, event.sender, event.receiver, event.detail) == (
            "corrupted", 0, 1, 2
        )
        # Receiver 1 heard 9 instead of 5 in round 1; round 2 relays recover
        # the true minimum, so agreement still holds here.
        assert result.decisions == {0: 5, 1: 5, 2: 5}

    def test_delayed_messages_are_audited_not_delivered(self):
        # The stale payload must never reach a later round's inbox: the
        # condition-kset algorithm floods an int in round 1 and a state
        # triple after, so retroactive delivery would crash the receiver.
        spec = AgreementSpec(n=3, t=1, k=1, d=1, domain=3)
        engine = Engine(spec, "condition-kset")
        delayed = EnumeratedDelay({(1, 0, 1): 1, (2, 0, 1): 1})
        result = engine.run([1, 2, 2], backend="net", net_adversary=delayed)
        outcomes = sorted(e.outcome for e in result.raw.fault_events)
        assert outcomes == ["delayed", "delayed", "expired", "late"]
        assert result.terminated

    def test_delay_past_the_final_round_expires(self):
        adversary = EnumeratedDelay({(2, 0, 1): 5})
        result = NetSystem(TINY.n, TINY.t, _floodmin(TINY)).run([1, 2, 3], adversary)
        assert [e.outcome for e in result.fault_events] == ["delayed", "expired"]

    def test_fingerprint_is_deterministic_and_fault_sensitive(self):
        system = NetSystem(TINY.n, TINY.t, _floodmin(TINY))
        a = system.run([1, 2, 3], MessageLossAdversary(p=0.4, seed=11))
        b = system.run([1, 2, 3], MessageLossAdversary(p=0.4, seed=11))
        c = system.run([1, 2, 3], MessageLossAdversary(p=0.4, seed=12))
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_run_seed_feeds_unseeded_stochastic_adversaries(self):
        system = NetSystem(TINY.n, TINY.t, _floodmin(TINY))
        adversary = MessageLossAdversary(p=0.4)  # seed=None: use the run seed
        a = system.run([1, 2, 3], adversary, seed=5)
        b = system.run([1, 2, 3], adversary, seed=5)
        c = system.run([1, 2, 3], adversary, seed=6)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineNetBackend:
    def test_run_normalizes_to_a_net_result(self):
        engine = Engine(SPEC, "floodmin")
        result = engine.run([2, 1, 3, 4], backend="net", net_adversary="send-omission")
        assert result.backend == "net"
        assert result.time_unit == "rounds"
        assert result.schedule is None
        assert result.fingerprint
        assert result.terminated

    def test_config_net_adversary_is_the_default(self):
        engine = Engine(
            SPEC, "floodmin", RunConfig(backend="net", net_adversary="message-loss")
        )
        result = engine.run([1, 2, 3, 4], seed=3)
        assert result.raw.adversary_family == "message-loss"

    def test_config_rejects_unknown_net_adversary(self):
        with pytest.raises(InvalidParameterError):
            RunConfig(net_adversary="no-such-model")

    def test_omission_victims_become_the_crashed_set(self):
        engine = Engine(SPEC, "floodmin")
        adversary = SendOmissionAdversary({1: {0}})
        result = engine.run([1, 2, 3, 4], backend="net", net_adversary=adversary)
        assert result.crashed == frozenset({1})

    def test_net_backend_rejects_sync_and_async_knobs(self):
        from repro.sync.adversary import CrashEvent, CrashSchedule

        engine = Engine(SPEC, "floodmin")
        schedule = CrashSchedule.from_events([CrashEvent.round_one_prefix(0, 1)])
        with pytest.raises(InvalidParameterError):
            engine.run([1, 2, 3, 4], schedule, backend="net")
        with pytest.raises(InvalidParameterError):
            engine.run([1, 2, 3, 4], backend="net", max_steps=10)
        with pytest.raises(InvalidParameterError):
            engine.run([1, 2, 3, 4], backend="net", async_adversary="random")

    def test_other_backends_reject_the_net_adversary(self):
        engine = Engine(SPEC, "floodmin")
        with pytest.raises(InvalidParameterError):
            engine.run([1, 2, 3, 4], backend="sync", net_adversary="message-loss")

    def test_batch_parity_serial_vs_workers(self):
        engine = Engine(SPEC, "floodmin")
        vectors = [[1, 2, 3, 4], [4, 3, 2, 1], [2, 2, 2, 2], [1, 1, 4, 4]]
        serial = engine.run_batch(
            vectors, backend="net", net_adversary="message-loss", seeds=[5, 6, 7, 8]
        )
        sharded = engine.run_batch(
            vectors,
            backend="net",
            net_adversary="message-loss",
            seeds=[5, 6, 7, 8],
            workers=4,
        )
        assert [r.to_record() for r in serial] == [r.to_record() for r in sharded]

    def test_parallel_batches_need_a_registry_name(self):
        engine = Engine(SPEC, "floodmin")
        with pytest.raises(InvalidParameterError):
            engine.run_batch(
                [[1, 2, 3, 4]],
                backend="net",
                net_adversary=SendOmissionAdversary({0: {1}}),
                workers=2,
            )

    def test_sweep_carries_the_net_adversary(self):
        engine = Engine(SPEC, "floodmin", RunConfig(backend="net"))
        cells = engine.sweep({"k": (1, 2)}, 2, net_adversary="message-loss")
        assert len(cells) == 2
        assert all(cell.error is None for cell in cells)
        for cell in cells:
            assert all(r.raw.adversary_family == "message-loss" for r in cell.results)

    def test_results_round_trip_through_the_store(self, tmp_path):
        engine = Engine(SPEC, "floodmin")
        store = ResultStore(tmp_path / "net.jsonl")
        results = engine.run_batch(
            [[1, 2, 3, 4], [2, 2, 1, 1]],
            backend="net",
            net_adversary="message-loss",
            store=store,
        )
        loaded = store.load_results()
        assert [r.fingerprint for r in loaded] == [r.fingerprint for r in results]
        assert all(r.backend == "net" for r in loaded)


# ----------------------------------------------------------------------
# The exhaustive fault-space checker
# ----------------------------------------------------------------------
class TestNetCheck:
    def test_floodmin_passes_send_omission_exhaustively(self):
        report = Engine(TINY, "floodmin").check(backend="net", adversary="send-omission")
        assert report.passed
        assert report.adversary == "send-omission"
        assert report.fault_count == count_faults(
            "send-omission", TINY.n, report.rounds, report.max_faults
        )
        assert report.executions == report.fault_count * report.vector_count
        for name in default_net_oracle_names():
            tally = report.tally(name)
            assert tally.violations == 0

    def test_acceptance_grid_n4_t2(self):
        # The ISSUE's acceptance bar: exhaustive n <= 4, t <= 2 with the
        # closed form cross-validated (run_net_check raises on mismatch).
        spec = AgreementSpec(n=4, t=2, k=2, domain=2)
        report = Engine(spec, "floodmin").check(backend="net", adversary="send-omission")
        assert report.passed
        assert report.max_faults == 2
        assert report.fault_count == count_faults(
            "send-omission", 4, report.rounds, 2
        )

    def test_serial_and_parallel_reports_are_byte_identical(self):
        engine = Engine(TINY, "floodmin")
        serial = engine.check(backend="net", adversary="receive-omission")
        sharded = engine.check(backend="net", adversary="receive-omission", workers=4)
        assert json.dumps(serial.to_record(), sort_keys=True) == json.dumps(
            sharded.to_record(), sort_keys=True
        )

    def test_message_loss_and_delay_families_pass_on_floodmin(self):
        engine = Engine(TINY, "floodmin")
        for family in ("message-loss", "bounded-delay"):
            report = engine.check(
                backend="net", adversary=family, vectors=[[1, 2, 3], [2, 1, 1]]
            )
            assert report.passed, report.render()

    def test_byzantine_gates_the_crash_only_oracles(self):
        report = Engine(TINY, "floodmin").check(
            backend="net", adversary="byzantine-corrupt", max_faults=1
        )
        assert report.tally("net-validity").checked == 0
        assert report.tally("net-agreement").checked == 0
        assert report.tally("net-termination").checked == report.executions
        assert "n/a" in report.render()

    def test_parameter_routing_is_guarded(self):
        engine = Engine(TINY, "floodmin")
        with pytest.raises(InvalidParameterError):
            engine.check(backend="sync", adversary="send-omission")
        with pytest.raises(InvalidParameterError):
            engine.check(backend="async", max_faults=1)
        with pytest.raises(InvalidParameterError):
            engine.check(backend="net", depth=2)
        with pytest.raises(InvalidParameterError):
            engine.check(backend="net", max_crashes=1)
        with pytest.raises(InvalidParameterError):
            engine.check(backend="net", adversary="no-such-model")

    def test_net_check_needs_a_net_capable_algorithm(self):
        spec = AgreementSpec(n=3, t=1, k=1, d=0, domain=2)
        engine = Engine(spec, "async-condition")
        with pytest.raises(BackendError):
            engine.check(backend="net")

    def test_oracle_subset_and_explicit_vectors(self):
        report = Engine(TINY, "floodmin").check(
            backend="net",
            adversary="send-omission",
            vectors=[[1, 2, 3]],
            oracles=["net-agreement"],
        )
        assert report.vector_count == 1
        assert [tally.oracle for tally in report.tallies] == ["net-agreement"]


# ----------------------------------------------------------------------
# Mutants: the oracles must bite
# ----------------------------------------------------------------------
class TestNetMutants:
    def test_echoless_floodmin_breaks_agreement_under_send_omission(self):
        register_mutants()
        report = Engine(TINY, MUTANT_ECHOLESS_FLOODMIN).check(
            backend="net", adversary="send-omission"
        )
        assert not report.passed
        assert report.tally("net-agreement").violations > 0
        # The relay-less mutant is fault-free-correct: only omission trips it.
        assert report.tally("net-termination").violations == 0

    def test_silent_floodmin_breaks_termination(self):
        register_mutants()
        report = Engine(TINY, MUTANT_SILENT_FLOODMIN).check(
            backend="net", adversary="fault-free"
        )
        assert not report.passed
        assert report.tally("net-termination").violations == report.executions
        assert report.tally("net-agreement").violations == 0

    def test_silent_mutant_is_net_only(self):
        register_mutants()
        with pytest.raises(BackendError):
            Engine(TINY, MUTANT_SILENT_FLOODMIN).run([1, 2, 3], backend="sync")

    def test_validity_oracle_bites_on_an_inventing_algorithm(self):
        # A throwaway mutant deciding a value nobody proposed pins the
        # net-validity oracle end to end.
        from repro.algorithms.classic_kset import FloodMinKSetAgreement, FloodMinProcess

        class _InventingProcess(FloodMinProcess):
            def receive_round(self, round_number, messages):
                super().receive_round(round_number, messages)
                if self.has_decided():
                    self._decision = self._decision + 1000

        class _InventingFloodMin(FloodMinKSetAgreement):
            def create_process(self, process_id, n, t):
                return _InventingProcess(process_id, n, self.t, self)

        key = "mutant-inventing-floodmin-test"
        if key not in ALGORITHMS:
            ALGORITHMS.add(
                key,
                AlgorithmEntry(
                    name=key,
                    backends=frozenset({"net"}),
                    build=lambda spec, condition: _InventingFloodMin(
                        t=spec.t, k=spec.k
                    ),
                    agreement_degree=lambda spec: spec.k,
                    summary="test-only validity mutant",
                    uses_condition=False,
                ),
            )
        report = Engine(TINY, key).check(backend="net", adversary="fault-free")
        assert not report.passed
        assert report.tally("net-validity").violations == report.executions

    def test_counterexample_replays_to_the_same_fingerprint(self):
        register_mutants()
        report = Engine(TINY, MUTANT_ECHOLESS_FLOODMIN).check(
            backend="net", adversary="send-omission"
        )
        counterexample = report.counterexamples[0]
        replayed = counterexample.replay()
        assert replayed.fingerprint == counterexample.fingerprint
        assert replayed.distinct_decision_count() > TINY.k

    def test_counterexample_record_and_store_round_trip(self, tmp_path):
        register_mutants()
        store = ResultStore(tmp_path / "ce.jsonl")
        report = Engine(TINY, MUTANT_ECHOLESS_FLOODMIN).check(
            backend="net", adversary="send-omission", store=store
        )
        loaded = store.load_net_counterexamples()
        assert len(loaded) == len(report.counterexamples)
        rebuilt = NetCounterexample.from_record(report.counterexamples[0].to_record())
        assert rebuilt.replay().fingerprint == report.counterexamples[0].fingerprint

    def test_mutant_check_parallel_parity(self):
        register_mutants()
        engine = Engine(TINY, MUTANT_ECHOLESS_FLOODMIN)
        serial = engine.check(backend="net", adversary="send-omission")
        sharded = engine.check(backend="net", adversary="send-omission", workers=4)
        assert json.dumps(serial.to_record(), sort_keys=True) == json.dumps(
            sharded.to_record(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Oracle unit behaviour
# ----------------------------------------------------------------------
class TestNetOracles:
    def _context(self, family: str) -> NetCheckContext:
        return NetCheckContext(spec=TINY, algorithm="floodmin", degree=1, family=family)

    def test_registry_names(self):
        assert default_net_oracle_names() == (
            "net-validity",
            "net-agreement",
            "net-termination",
        )

    def test_benign_gate(self):
        result = Engine(TINY, "floodmin").run([1, 2, 3], backend="net")
        for name in ("net-validity", "net-agreement"):
            oracle = NET_ORACLES[name]
            assert oracle.applies(self._context("send-omission"), result)
            assert not oracle.applies(self._context("byzantine-corrupt"), result)
        assert NET_ORACLES["net-termination"].applies(
            self._context("byzantine-corrupt"), result
        )

    def test_oracles_pass_a_clean_run(self):
        result = Engine(TINY, "floodmin").run([1, 2, 3], backend="net")
        context = self._context("fault-free")
        for oracle in NET_ORACLES.values():
            assert oracle.check(context, result) is None


# ----------------------------------------------------------------------
# Seed determinism (Hypothesis)
# ----------------------------------------------------------------------
class TestSeedDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        vector=st.lists(
            st.integers(min_value=1, max_value=3), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_message_loss_fingerprint_is_a_function_of_the_seed(self, seed, vector):
        engine = Engine(TINY, "floodmin")
        first = engine.run(
            vector, backend="net", net_adversary="message-loss", seed=seed
        )
        second = engine.run(
            vector, backend="net", net_adversary="message-loss", seed=seed
        )
        assert first.fingerprint == second.fingerprint
        assert first.decisions == second.decisions

    @given(assignment=omission_assignments(n=4, t=2))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_omission_assignments_keep_floodmin_safe(self, assignment):
        spec = AgreementSpec(n=4, t=2, k=1, domain=4)
        adversary = SendOmissionAdversary(assignment) if assignment else FaultFreeAdversary()
        result = NetSystem(spec.n, spec.t, _floodmin(spec)).run(
            [1, 2, 3, 4], adversary
        )
        correct = result.correct_processes
        decided = {result.decisions[pid] for pid in correct if pid in result.decisions}
        assert len(decided) <= spec.k
        assert result.all_correct_decided()

    @given(lost=lost_message_sets(n=3, rounds=2, max_faults=2))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_enumerated_loss_is_replayable_from_its_record(self, lost):
        adversary = EnumeratedMessageLoss(lost)
        system = NetSystem(TINY.n, TINY.t, _floodmin(TINY))
        first = system.run([1, 2, 3], adversary)
        replay = system.run([1, 2, 3], adversary_from_record(adversary.fault_record()))
        assert first.fingerprint == replay.fingerprint


# ----------------------------------------------------------------------
# Scenario, CLI and serve wiring
# ----------------------------------------------------------------------
class TestNetScenario:
    def test_run_batch_and_check(self):
        scenario = net_scenario(3, 3, 1, 1, adversary="send-omission", seed=2)
        result = scenario.run()
        assert result.backend == "net"
        serial = scenario.batch(3, seed=4)
        sharded = scenario.batch(3, seed=4, workers=2)
        assert [r.fingerprint for r in serial] == [r.fingerprint for r in sharded]
        report = scenario.check()
        assert report.passed
        assert report.vector_count == 1

    def test_unknown_adversary_is_rejected(self):
        with pytest.raises(InvalidParameterError):
            net_scenario(3, 3, 1, 1, adversary="round-robin")


class TestNetCli:
    def test_demo_net_backend(self, capsys):
        from repro.cli import main

        assert main(
            ["demo", "--backend", "net", "--adversary", "message-loss",
             "--n", "4", "--t", "1", "--d", "1", "--k", "1", "--m", "4"]
        ) == 0
        output = capsys.readouterr().out
        assert "net backend" in output
        assert "failure model    : message-loss" in output

    def test_check_net_backend_passes_on_floodmin(self, capsys):
        from repro.cli import main

        assert main(
            ["check", "--backend", "net", "--algorithm", "floodmin",
             "--adversary", "send-omission", "--n", "3", "--t", "1",
             "--d", "1", "--k", "1"]
        ) == 0
        assert "send-omission" in capsys.readouterr().out

    def test_check_net_store_kind_label(self, capsys, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "ce.jsonl")
        assert main(
            ["check", "--backend", "net", "--algorithm", "floodmin",
             "--adversary", "send-omission", "--n", "3", "--t", "1",
             "--d", "1", "--k", "1", "--store", store]
        ) == 0
        assert "net-counterexample" in capsys.readouterr().out

    def test_adversary_namespace_is_backend_checked(self, capsys):
        from repro.cli import main

        assert main(
            ["demo", "--backend", "sync", "--adversary", "message-loss"]
        ) == 2
        assert main(
            ["demo", "--backend", "net", "--adversary", "round-robin",
             "--n", "4", "--t", "1", "--d", "1", "--k", "1"]
        ) == 2
        assert main(
            ["demo", "--backend", "net", "--crashes", "1",
             "--n", "4", "--t", "1", "--d", "1", "--k", "1"]
        ) == 2
        capsys.readouterr()


class TestServeNet:
    def test_net_run_and_check_over_http(self):
        from repro.serve import ReproServer
        from repro.serve.client import ServeClient

        with ReproServer(port=0) as server:
            client = ServeClient(port=server.port)
            result = client.run(
                TINY, [1, 2, 3], algorithm="floodmin", backend="net",
                adversary="message-loss", seed=5,
            )
            direct = Engine(TINY, "floodmin").run(
                [1, 2, 3], backend="net", net_adversary="message-loss", seed=5
            )
            assert result.to_record() == direct.to_record()
            outcome = client.check(
                TINY, algorithm="floodmin", backend="net",
                adversary="send-omission",
            )
            assert outcome["passed"] is True
            assert outcome["report"]["backend"] == "net"

    def test_net_rejects_crash_steps(self):
        from repro.serve import ReproServer
        from repro.serve.client import ServeClient
        from repro.exceptions import ServeError

        with ReproServer(port=0) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError):
                client.run(
                    TINY, [1, 2, 3], algorithm="floodmin", backend="net",
                    crash_steps={0: 1},
                )

    def test_client_retries_refused_connections(self):
        import time
        from repro.serve.client import ServeClient
        from repro.exceptions import ServeError

        client = ServeClient(port=1, connect_retries=2, retry_backoff=0.01)
        start = time.monotonic()
        with pytest.raises(ServeError, match="after 3 attempt"):
            client.status()
        assert time.monotonic() - start >= 0.03 - 0.005

    def test_client_retry_parameters_are_validated(self):
        from repro.serve.client import ServeClient
        from repro.exceptions import ServeError

        with pytest.raises(ServeError):
            ServeClient(connect_retries=-1)
        with pytest.raises(ServeError):
            ServeClient(retry_backoff=-0.1)
