"""Unit tests for explicit conditions and the implicit max_l condition oracle."""

from __future__ import annotations

import pytest

from repro.core.conditions import ExplicitCondition, MaxLegalCondition
from repro.core.recognizing import MaxValues
from repro.core.values import BOTTOM, ValueDomain
from repro.core.vectors import InputVector, View
from repro.exceptions import (
    DecodingError,
    EmptyConditionError,
    InvalidParameterError,
    InvalidVectorError,
)


class TestExplicitCondition:
    def build(self):
        vectors = [InputVector([3, 3, 1]), InputVector([2, 2, 1])]
        return ExplicitCondition(vectors, MaxValues(1), name="demo")

    def test_container_protocol(self):
        condition = self.build()
        assert len(condition) == 2
        assert InputVector([3, 3, 1]) in condition
        assert InputVector([1, 1, 1]) not in condition
        assert condition.n == 3
        assert condition.ell == 1
        assert condition.name == "demo"
        assert set(condition) == condition.vectors

    def test_requires_vectors(self):
        with pytest.raises(EmptyConditionError):
            ExplicitCondition([])

    def test_rejects_mixed_sizes(self):
        with pytest.raises(InvalidVectorError):
            ExplicitCondition([InputVector([1]), InputVector([1, 2])])

    def test_rejects_views(self):
        with pytest.raises(InvalidVectorError):
            ExplicitCondition([View([1, BOTTOM])])

    def test_predicate_and_containing_vectors(self):
        condition = self.build()
        view = View([3, BOTTOM, 1])
        assert condition.is_compatible(view)
        assert condition.vectors_containing(view) == (InputVector([3, 3, 1]),)
        assert not condition.is_compatible(View([9, BOTTOM, BOTTOM]))

    def test_decode(self):
        condition = self.build()
        assert condition.decode(View([3, BOTTOM, 1])) == frozenset({3})
        assert condition.decode_max(View([BOTTOM, 2, 1])) == 2

    def test_decode_requires_recognizer(self):
        condition = ExplicitCondition([InputVector([1, 1])])
        with pytest.raises(InvalidParameterError):
            condition.decode(View([1, BOTTOM]))
        with pytest.raises(InvalidParameterError):
            _ = condition.ell

    def test_with_recognizer(self):
        bare = ExplicitCondition([InputVector([1, 1])])
        enriched = bare.with_recognizer(MaxValues(1))
        assert enriched.ell == 1
        assert enriched.vectors == bare.vectors

    def test_union_and_subset(self):
        first = ExplicitCondition([InputVector([1, 1])])
        second = ExplicitCondition([InputVector([2, 2])])
        union = first.union(second)
        assert len(union) == 2
        assert first.is_subset_of(union)
        assert not union.is_subset_of(first)
        with pytest.raises(InvalidVectorError):
            first.union(ExplicitCondition([InputVector([1, 1, 1])]))

    def test_restrict(self):
        condition = self.build()
        restricted = condition.restrict(lambda v: 3 in v.val())
        assert restricted.vectors == frozenset({InputVector([3, 3, 1])})

    def test_equality_and_hash(self):
        assert self.build() == self.build()
        assert len({self.build(), self.build()}) == 1


class TestMaxLegalConditionMembership:
    def test_parameters_validated(self):
        with pytest.raises(InvalidParameterError):
            MaxLegalCondition(0, 3, 1, 1)
        with pytest.raises(InvalidParameterError):
            MaxLegalCondition(4, 3, -1, 1)
        with pytest.raises(InvalidParameterError):
            MaxLegalCondition(4, 3, 4, 1)  # x >= n
        with pytest.raises(InvalidParameterError):
            MaxLegalCondition(4, 3, 1, 0)

    def test_domain_shorthand(self):
        condition = MaxLegalCondition(4, 5, 2, 1)
        assert condition.domain == ValueDomain(5)
        assert condition.n == 4
        assert condition.x == 2
        assert condition.ell == 1
        assert "max_1" in condition.name

    def test_membership_ell1(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        assert condition.contains(InputVector([3, 3, 3, 1]))
        assert not condition.contains(InputVector([3, 3, 1, 1]))
        assert condition.contains(InputVector([1, 1, 1, 1]))

    def test_membership_ell2(self):
        condition = MaxLegalCondition(5, 4, 3, 2)
        # top-2 values {4, 3} occupy 4 > 3 entries.
        assert condition.contains(InputVector([4, 4, 3, 3, 1]))
        # top-2 values {4, 3} occupy only 2 entries.
        assert not condition.contains(InputVector([4, 3, 2, 1, 1]))
        # fewer than 2 distinct values: always inside.
        assert condition.contains(InputVector([2, 2, 2, 2, 2]))

    def test_membership_validates_vector(self):
        condition = MaxLegalCondition(3, 3, 1, 1)
        with pytest.raises(InvalidVectorError):
            condition.contains(InputVector([1, 2]))
        with pytest.raises(InvalidVectorError):
            condition.contains(InputVector([1, 2, 9]))

    def test_enumeration_matches_membership(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        enumerated = set(condition.enumerate_vectors())
        assert all(condition.contains(v) for v in enumerated)
        assert len(enumerated) == condition.size()

    def test_to_explicit_round_trip(self):
        implicit = MaxLegalCondition(4, 3, 2, 2)
        explicit = implicit.to_explicit()
        assert len(explicit) == implicit.size()
        assert explicit.ell == 2


class TestMaxLegalConditionViews:
    def test_predicate_fills_with_max(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        # [3, 3, ⊥, 1]: filling ⊥ with 3 gives three 3s > x = 2.
        assert condition.is_compatible(View([3, 3, BOTTOM, 1]))
        # [3, 2, ⊥, 1]: best completion has the top value only twice.
        assert not condition.is_compatible(View([3, 2, BOTTOM, 1]))

    def test_predicate_all_bottom_view(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        assert condition.is_compatible(View([BOTTOM] * 4))

    def test_decode_simple(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        assert condition.decode(View([3, 3, BOTTOM, 1])) == frozenset({3})
        assert condition.decode_max(View([3, 3, BOTTOM, 1])) == 3

    def test_decode_requires_compatibility(self):
        condition = MaxLegalCondition(4, 3, 2, 1)
        with pytest.raises(DecodingError):
            condition.decode(View([3, 2, BOTTOM, 1]))

    def test_decode_matches_explicit_enumeration_ell1(self):
        implicit = MaxLegalCondition(4, 3, 2, 1)
        explicit = implicit.to_explicit()
        views = [
            View([3, 3, BOTTOM, 1]),
            View([2, 2, BOTTOM, 2]),
            View([1, 1, 1, BOTTOM]),
            View([3, BOTTOM, 3, 3]),
        ]
        for view in views:
            assert implicit.is_compatible(view) == explicit.is_compatible(view)
            if implicit.is_compatible(view):
                assert implicit.decode(view) == explicit.decode(view)

    def test_decode_matches_explicit_enumeration_ell2(self):
        implicit = MaxLegalCondition(5, 3, 3, 2)
        explicit = implicit.to_explicit()
        views = [
            View([3, 3, 2, BOTTOM, BOTTOM]),
            View([3, 2, 2, BOTTOM, 1]),
            View([1, 1, BOTTOM, 1, 1]),
            View([3, BOTTOM, BOTTOM, 2, 1]),
            View([2, 2, 3, 3, BOTTOM]),
        ]
        for view in views:
            assert implicit.is_compatible(view) == explicit.is_compatible(view)
            if implicit.is_compatible(view):
                assert implicit.decode(view) == explicit.decode(view)

    def test_decode_size_bounds(self):
        """Theorem 1: 1 <= |h_l(J)| <= l when the view has at most x bottoms."""
        condition = MaxLegalCondition(5, 3, 3, 2)
        for view in [
            View([3, 3, 2, BOTTOM, BOTTOM]),
            View([2, 2, BOTTOM, 2, 1]),
            View([3, 1, 1, 1, BOTTOM]),
        ]:
            if view.bottom_count() <= condition.x and condition.is_compatible(view):
                decoded = condition.decode(view)
                assert 1 <= len(decoded) <= condition.ell
                assert decoded <= view.val()

    def test_repr(self):
        assert "MaxLegalCondition" in repr(MaxLegalCondition(4, 3, 2, 1))
