"""The shared adversary-namespace table (:mod:`repro.api.namespaces`).

Satellite of the lint PR: the disjointness the CLI's ``--adversary`` split
always *relied on* is now stated once — here — and consumed by both
``repro.cli._resolve_adversaries`` and the ``adversary-namespace`` lint
rule.
"""

from __future__ import annotations

import pytest

from repro.api.namespaces import (
    ADVERSARY_NAMESPACES,
    ADVERSARY_REGISTRARS,
    adversary_namespace_of,
    adversary_namespace_overlaps,
)
from repro.asynchronous.adversary import available_async_adversaries
from repro.cli import _resolve_adversaries
from repro.exceptions import InvalidParameterError
from repro.net.adversary import NET_ADVERSARIES, available_net_adversaries


class TestTable:
    def test_covers_both_flag_namespaces(self):
        assert set(ADVERSARY_NAMESPACES) == {"async", "net"}
        assert ADVERSARY_NAMESPACES["async"]() == available_async_adversaries()
        assert ADVERSARY_NAMESPACES["net"]() == available_net_adversaries()

    def test_registrar_table_matches_namespace_table(self):
        assert set(ADVERSARY_REGISTRARS.values()) == set(ADVERSARY_NAMESPACES)

    def test_shipped_namespaces_are_disjoint(self):
        assert adversary_namespace_overlaps() == {}

    def test_classification(self):
        assert adversary_namespace_of("round-robin") == "async"
        assert adversary_namespace_of("send-omission") == "net"
        assert adversary_namespace_of("no-such-adversary") is None

    def test_overlap_detection(self):
        # Collide the async name "random" into the net namespace and check
        # the table notices; NET_ADVERSARIES is a plain dict, so the probe
        # entry is removed again even on assertion failure.
        NET_ADVERSARIES["random"] = object()
        try:
            overlaps = adversary_namespace_overlaps()
            assert overlaps == {"random": ("async", "net")}
        finally:
            del NET_ADVERSARIES["random"]
        assert adversary_namespace_overlaps() == {}


class TestCliResolution:
    """_resolve_adversaries consumes the table (single source of truth)."""

    def test_default_knobs(self):
        assert _resolve_adversaries("sync", None) == ("random", "fault-free")

    def test_async_name_on_async_backend(self):
        assert _resolve_adversaries("async", "latency-skew") == (
            "latency-skew",
            "fault-free",
        )

    def test_net_name_on_net_backend(self):
        assert _resolve_adversaries("net", "send-omission") == (
            "random",
            "send-omission",
        )

    def test_async_name_on_net_backend_is_rejected(self):
        with pytest.raises(InvalidParameterError, match="failure model"):
            _resolve_adversaries("net", "latency-skew")

    def test_net_name_on_async_backend_is_rejected(self):
        with pytest.raises(InvalidParameterError, match="net failure model"):
            _resolve_adversaries("async", "send-omission")
