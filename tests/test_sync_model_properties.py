"""Model-level properties of the synchronous substrate.

The key property the paper's algorithm relies on (Section 6.2) is that the
round-1 views are ordered by containment because the send phase is ordered and
a crashing sender only reaches a prefix of the processes.  These tests assert
that property directly on the engine, including with Hypothesis-generated
crash schedules.
"""

from __future__ import annotations

from typing import Any, Mapping

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import BOTTOM
from repro.core.vectors import InputVector, View
from repro.sync.adversary import CrashEvent, CrashSchedule
from repro.sync.process import RoundBasedProcess, SynchronousAlgorithm
from repro.sync.runtime import SynchronousSystem


class ViewCollector(RoundBasedProcess):
    """Records the round-1 view exactly as the Figure 2 algorithm builds it."""

    def __init__(self, process_id: int, n: int, t: int) -> None:
        super().__init__(process_id, n, t)
        self.view: View | None = None

    def message_for_round(self, round_number: int) -> Any:
        return self.proposal

    def receive_round(self, round_number: int, messages: Mapping[int, Any]) -> None:
        entries = [BOTTOM] * self.n
        entries[self.process_id] = self.proposal
        for sender, value in messages.items():
            entries[sender] = value
        self.view = View(entries)
        self.decide(self.proposal, round_number)


class ViewCollectorAlgorithm(SynchronousAlgorithm):
    def create_process(self, process_id: int, n: int, t: int) -> ViewCollector:
        return ViewCollector(process_id, n, t)

    def max_rounds(self, n: int, t: int) -> int:
        return 1


def run_round_one(n: int, t: int, schedule: CrashSchedule) -> dict[int, View]:
    system = SynchronousSystem(n, t, ViewCollectorAlgorithm())
    vector = InputVector(list(range(1, n + 1)))
    processes: dict[int, View] = {}
    result = system.run(vector, schedule)
    # Recover the views through the trace-free API: re-run with a recording
    # algorithm would be heavier; instead re-create the views from decisions.
    # Simpler: run again keeping references to the processes.
    del result
    collected: dict[int, View] = {}

    class Capturing(ViewCollectorAlgorithm):
        def create_process(self, process_id: int, n_: int, t_: int) -> ViewCollector:
            process = ViewCollector(process_id, n_, t_)
            processes[process_id] = process  # type: ignore[assignment]
            return process

    SynchronousSystem(n, t, Capturing()).run(vector, schedule)
    for process_id, process in processes.items():
        if process.view is not None:
            collected[process_id] = process.view
    return collected


def schedules_strategy(n: int, t: int):
    """Random round-1 prefix crash schedules with at most t victims."""
    victim_sets = st.lists(
        st.integers(min_value=0, max_value=n - 1), unique=True, max_size=t
    )

    def build(victims_and_prefixes):
        victims, prefixes = victims_and_prefixes
        events = [
            CrashEvent.round_one_prefix(victim, prefix % (n + 1))
            for victim, prefix in zip(victims, prefixes)
        ]
        return CrashSchedule.from_events(events)

    return victim_sets.flatmap(
        lambda victims: st.tuples(
            st.just(victims),
            st.lists(
                st.integers(min_value=0, max_value=n),
                min_size=len(victims),
                max_size=len(victims),
            ),
        )
    ).map(build)


class TestRoundOneContainment:
    def test_prefix_crash_gives_containment_chain(self):
        n, t = 5, 3
        schedule = CrashSchedule.from_events(
            [
                CrashEvent.round_one_prefix(4, 2),
                CrashEvent.round_one_prefix(3, 4),
            ]
        )
        views = run_round_one(n, t, schedule)
        ids = sorted(views)
        # Lower-numbered processes receive supersets: V_j ⊆ V_i for i <= j.
        for i in ids:
            for j in ids:
                if i <= j:
                    assert views[j].contained_in(views[i])

    def test_all_views_contained_in_input_vector(self):
        n, t = 5, 2
        schedule = CrashSchedule.from_events([CrashEvent.round_one_prefix(2, 1)])
        views = run_round_one(n, t, schedule)
        full = View(list(range(1, n + 1)))
        for view in views.values():
            assert view.contained_in(full)

    @settings(max_examples=40, deadline=None)
    @given(schedules_strategy(6, 3))
    def test_containment_holds_for_random_prefix_schedules(self, schedule):
        views = run_round_one(6, 3, schedule)
        ordered = [views[pid] for pid in sorted(views)]
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.contained_in(earlier)

    @settings(max_examples=40, deadline=None)
    @given(schedules_strategy(6, 3))
    def test_bottom_counts_match_delivery(self, schedule):
        views = run_round_one(6, 3, schedule)
        for pid, view in views.items():
            missing = view.bottom_positions()
            for other in missing:
                event = schedule.events.get(other)
                assert event is not None and event.round_number == 1
                assert pid not in event.delivered_to
