"""Tests for parallel batch execution, the result store, and the PR's bugfixes.

Covers the two fixed defects — the condition algebra now composes with the
engine's :class:`~repro.api.MemoizedCondition` oracle, and
``run_batch(chunk_size=...)`` rejects values below 1 loudly — plus the
parallel subsystem's contract: ``workers=4`` produces the exact
:class:`~repro.api.RunResult` sequence of the serial path on both backends,
worker cache statistics merge back into the parent engine, and
:class:`~repro.store.ResultStore` round-trips results and sweep cells
exactly.
"""

from __future__ import annotations

import pytest

from repro.api import AgreementSpec, Engine, MemoizedCondition, RunConfig, RunResult
from repro.api.conditions import resolve_condition
from repro.core import ExplicitCondition, InputVector
from repro.core.algebra import UnionCondition
from repro.exceptions import InvalidParameterError, StoreError
from repro.store import ResultStore
from repro.workloads.scenarios import fast_path_scenario
from repro.workloads.vectors import vector_in_max_condition

SPEC = AgreementSpec(n=8, t=4, k=2, d=2, ell=1, domain=10)
SMALL = AgreementSpec(n=6, t=3, k=2, d=2, ell=1, domain=4)


def _vectors(count: int, spec: AgreementSpec = SPEC) -> list[InputVector]:
    return [
        vector_in_max_condition(spec.n, spec.domain, spec.x, spec.ell, seed)
        for seed in range(count)
    ]


def _records(results) -> list[dict]:
    return [result.to_record() for result in results]


class TestMemoizedConditionAlgebra:
    """Bugfix: the condition algebra works on the engine's memoized oracle."""

    def test_union_operator_on_engine_condition(self):
        engine = Engine(SMALL, "condition-kset")
        other = resolve_condition(SMALL.replace(condition="min-legal"))
        union = engine.condition | other
        assert isinstance(union, UnionCondition)
        # The union composes the *wrapped* oracles, not the memo proxy.
        assert engine.condition.inner in union.operands
        vector = InputVector([4, 4, 4, 4, 1, 2])
        assert union.contains(vector)

    def test_reflected_union(self):
        engine = Engine(SMALL, "condition-kset")
        other = resolve_condition(SMALL.replace(condition="min-legal"))
        assert isinstance(other | engine.condition, UnionCondition)

    def test_intersection_and_difference_operators(self):
        engine = Engine(SMALL, "condition-kset")
        other = resolve_condition(SMALL.replace(condition="min-legal"))
        intersection = engine.condition & other
        difference = engine.condition - other
        assert isinstance(intersection, ExplicitCondition)
        assert isinstance(difference, ExplicitCondition)
        assert len(intersection) + len(difference) == engine.condition.size()
        for vector in list(difference)[:16]:
            assert engine.condition.contains(vector) and not other.contains(vector)

    def test_restrict_delegates_to_wrapped_oracle(self):
        engine = Engine(SMALL, "condition-kset")
        restricted = engine.condition.restrict(lambda v: max(v.entries) == 4)
        assert all(max(v.entries) == 4 for v in restricted)

    def test_both_operands_memoized(self):
        left = Engine(SMALL, "condition-kset").condition
        right = Engine(SMALL.replace(condition="min-legal"), "condition-kset").condition
        union = left | right
        assert isinstance(union, UnionCondition)
        assert not any(isinstance(op, MemoizedCondition) for op in union.operands)

    def test_forwarded_attributes_cover_samplers_and_algebra(self):
        oracle = Engine(SMALL, "condition-kset").condition
        assert oracle.n == SMALL.n
        assert oracle.x == SMALL.x
        assert oracle.domain.size == SMALL.domain
        assert oracle.recognizer is oracle.inner.recognizer
        assert oracle.size() == oracle.inner.size()
        assert next(iter(oracle.enumerate_vectors())) in oracle.inner
        explicit = oracle.to_explicit()
        assert len(explicit) == oracle.size()

    def test_unknown_attribute_still_raises(self):
        oracle = Engine(SMALL, "condition-kset").condition
        with pytest.raises(AttributeError):
            oracle.no_such_attribute

    def test_operator_with_non_oracle_raises_type_error(self):
        oracle = Engine(SMALL, "condition-kset").condition
        with pytest.raises(TypeError):
            oracle | 42


class TestChunkSizeValidation:
    """Bugfix: chunk_size below 1 is rejected, not silently defaulted."""

    @pytest.mark.parametrize("bad", [0, -1, -64, 2.5, "8"])
    def test_invalid_chunk_size_rejected(self, bad):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError, match="chunk_size"):
            engine.run_batch(_vectors(2), chunk_size=bad)

    def test_none_uses_config_default(self):
        engine = Engine(SPEC, "condition-kset")
        assert len(engine.run_batch(_vectors(3), chunk_size=None)) == 3

    def test_chunk_size_one_is_valid(self):
        engine = Engine(SPEC, "condition-kset")
        assert len(engine.run_batch(_vectors(3), chunk_size=1)) == 3


class TestWorkersValidation:
    def test_config_workers_validated(self):
        with pytest.raises(InvalidParameterError, match="workers"):
            RunConfig(workers=0)
        with pytest.raises(InvalidParameterError, match="workers"):
            RunConfig(workers=-2)

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_call_workers_validated(self, bad):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError, match="workers"):
            engine.run_batch(_vectors(2), workers=bad)

    def test_prebuilt_instance_cannot_go_parallel(self):
        from repro.algorithms import FloodMinKSetAgreement

        engine = Engine.for_algorithm(FloodMinKSetAgreement(t=2, k=2), n=6)
        with pytest.raises(InvalidParameterError, match="registry key"):
            engine.run_batch([[1, 2, 3, 1, 2, 3]], workers=2)


class TestParallelDeterminism:
    """workers=4 returns the byte-identical result sequence of the serial path."""

    def test_sync_backend_parity(self):
        vectors = _vectors(12)
        serial = Engine(SPEC, "condition-kset").run_batch(
            vectors, "round-one", chunk_size=3
        )
        parallel = Engine(SPEC, "condition-kset").run_batch(
            vectors, "round-one", chunk_size=3, workers=4
        )
        assert _records(serial) == _records(parallel)

    def test_async_backend_parity(self):
        vectors = _vectors(8)
        config = RunConfig(backend="async")
        serial = Engine(SPEC, "condition-kset", config).run_batch(vectors, chunk_size=2)
        parallel = Engine(SPEC, "condition-kset", config).run_batch(
            vectors, chunk_size=2, workers=4
        )
        assert _records(serial) == _records(parallel)

    def test_config_workers_used_as_default(self):
        vectors = _vectors(6)
        serial = Engine(SPEC, "condition-kset").run_batch(vectors)
        parallel = Engine(SPEC, "condition-kset", RunConfig(workers=2)).run_batch(vectors)
        assert _records(serial) == _records(parallel)

    def test_worker_cache_stats_merge_back(self):
        vectors = _vectors(10)
        engine = Engine(SPEC, "condition-kset")
        engine.run_batch(vectors, workers=2, chunk_size=2)
        stats = engine.cache_stats()
        # Every run answers membership + per-round oracle queries somewhere;
        # with merged worker deltas the parent's counters see all of them.
        assert stats["contains"].calls == len(vectors)
        assert stats["decode"].calls > 0

    def test_iter_batch_streams_in_order(self):
        vectors = _vectors(9)
        engine = Engine(SPEC, "condition-kset")
        expected = _records(engine.run_batch(vectors, chunk_size=2))
        streamed = []
        for result in engine.iter_batch(vectors, chunk_size=2, workers=3):
            assert isinstance(result, RunResult)
            streamed.append(result)
        assert _records(streamed) == expected

    def test_sweep_parity(self):
        grid = {"d": (1, 2), "k": (1, 2)}
        serial = Engine(SMALL, "condition-kset").sweep(grid, runs_per_cell=2)
        parallel = Engine(SMALL, "condition-kset").sweep(grid, runs_per_cell=2, workers=3)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.overrides == b.overrides
            assert a.error == b.error
            assert _records(a.results) == _records(b.results)

    def test_sweep_parity_includes_error_cells(self):
        grid = {"d": (1, 9)}  # d=9 > t is an invalid combination
        serial = Engine(SMALL, "condition-kset").sweep(grid, runs_per_cell=1)
        parallel = Engine(SMALL, "condition-kset").sweep(grid, runs_per_cell=1, workers=2)
        assert [c.error for c in serial] == [c.error for c in parallel]
        assert serial[1].error is not None

    def test_scenario_batch_parity(self):
        scenario = fast_path_scenario(n=8, m=10, t=4, d=2, ell=1, k=2)
        assert _records(scenario.batch(5)) == _records(scenario.batch(5, workers=2))


class TestResultRecordRoundTrip:
    def test_sync_record_round_trip(self):
        engine = Engine(SPEC, "condition-kset")
        result = engine.run(_vectors(1)[0], "round-one", seed=3)
        reloaded = RunResult.from_record(result.to_record())
        assert reloaded.to_record() == result.to_record()
        assert reloaded.decisions == result.decisions
        assert reloaded.input_vector == result.input_vector
        assert reloaded.crashed == result.crashed
        assert reloaded.schedule.events == result.schedule.events
        assert reloaded.raw is None and reloaded.trace is None

    def test_async_record_round_trip(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        result = engine.run(_vectors(1)[0])
        reloaded = RunResult.from_record(result.to_record())
        assert reloaded.to_record() == result.to_record()
        assert reloaded.time_unit == "steps"

    def test_malformed_record_raises(self):
        with pytest.raises(InvalidParameterError, match="malformed"):
            RunResult.from_record({"algorithm": "x"})


class TestResultStore:
    def test_write_then_load_preserves_results_exactly(self, tmp_path):
        engine = Engine(SPEC, "condition-kset")
        results = engine.run_batch(_vectors(6), "round-one")
        store = ResultStore(tmp_path / "runs.jsonl")
        assert store.extend(results) == 6
        assert _records(store.load_results()) == _records(results)
        assert store.resume_index() == 6
        assert len(store) == 6

    def test_engine_appends_while_running(self, tmp_path):
        store = ResultStore(tmp_path / "nested" / "runs.jsonl")
        engine = Engine(SPEC, "condition-kset")
        results = engine.run_batch(_vectors(4), store=store)
        assert _records(store.load_results()) == _records(results)

    def test_parallel_batch_persists_in_order(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        engine = Engine(SPEC, "condition-kset")
        results = engine.run_batch(_vectors(8), chunk_size=2, workers=3, store=store)
        assert _records(store.load_results()) == _records(results)

    def test_resume_pattern_completes_the_batch(self, tmp_path):
        vectors = _vectors(10)
        store = ResultStore(tmp_path / "runs.jsonl")
        full = Engine(SPEC, "condition-kset").run_batch(vectors)
        # First attempt dies after 4 runs...
        Engine(SPEC, "condition-kset").run_batch(vectors[:4], store=store)
        # ...the resume shifts the base seed by what is already persisted.
        done = store.resume_index()
        assert done == 4
        config = RunConfig(seed=done)
        Engine(SPEC, "condition-kset", config).run_batch(vectors[done:], store=store)
        assert _records(store.load_results()) == _records(full)

    def test_sweep_cells_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cells.jsonl")
        cells = Engine(SMALL, "condition-kset").sweep(
            {"d": (1, 9)}, runs_per_cell=2, store=store
        )
        loaded = store.load_cells()
        assert len(loaded) == len(cells) == 2
        for original, reloaded in zip(cells, loaded):
            assert reloaded.spec == original.spec
            assert reloaded.overrides == original.overrides
            assert reloaded.error == original.error
            assert _records(reloaded.results) == _records(original.results)
        assert store.counts() == {"cell": 2}

    def test_interrupted_sweep_keeps_finished_cells(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "cells.jsonl")
        engine = Engine(SMALL, "condition-kset")
        original = Engine._sweep_cell

        def dies_on_second_cell(self, overrides, index, *args, **kwargs):
            if index == 1:
                raise RuntimeError("simulated interruption")
            return original(self, overrides, index, *args, **kwargs)

        monkeypatch.setattr(Engine, "_sweep_cell", dies_on_second_cell)
        with pytest.raises(RuntimeError):
            engine.sweep({"d": (1, 2, 3)}, runs_per_cell=1, store=store)
        persisted = store.load_cells()
        assert len(persisted) == 1
        assert persisted[0].overrides == {"d": 1}

    def test_context_manager_closes_handle(self, tmp_path):
        results = Engine(SPEC, "condition-kset").run_batch(_vectors(2))
        with ResultStore(tmp_path / "runs.jsonl") as store:
            store.extend(results)
        assert store._handle is None
        store.append(results[0])  # a closed store reopens transparently
        assert store.resume_index() == 3

    def test_missing_file_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.load_results() == []
        assert store.resume_index() == 0
        assert len(store) == 0

    def test_malformed_line_raises_store_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "run"\nnot json\n')
        with pytest.raises(StoreError, match="malformed JSON"):
            list(ResultStore(path).iter_records())

    def test_corrupt_run_record_raises_store_error(self, tmp_path):
        import json

        engine = Engine(SPEC, "condition-kset", RunConfig(crashes=2))
        record = engine.run(_vectors(1)[0], "round-one", seed=1).to_record()
        record["kind"] = "run"
        record["schedule"][0]["process_id"] = -1  # valid JSON, invalid domain
        path = tmp_path / "corrupt.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(StoreError, match="malformed run record"):
            ResultStore(path).load_results()

    def test_record_without_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"algorithm": "x"}\n')
        with pytest.raises(StoreError, match="kind"):
            list(ResultStore(path).iter_records())

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.extend(Engine(SPEC, "condition-kset").run_batch(_vectors(2)))
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestResultStoreConcurrency:
    """Regression: concurrent appends must never interleave or drop lines.

    The serving daemon appends to one store from many handler threads; before
    the store grew its write lock, two threads flushing at once could split a
    JSON line.  The hammer drives enough threads through one store that a
    missing lock fails reliably, then proves every record landed intact.
    """

    def test_threaded_append_hammer(self, tmp_path):
        import threading

        store = ResultStore(tmp_path / "hammer.jsonl")
        results = Engine(SPEC, "condition-kset").run_batch(_vectors(8))
        per_thread, thread_count = 25, 8
        errors = []

        def hammer(offset):
            try:
                for index in range(per_thread):
                    store.append(results[(offset + index) % len(results)])
            except Exception as error:  # noqa: BLE001 - surfaced by the assert
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(offset,))
            for offset in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # Every line parses and every record survived: no torn writes.
        reloaded = store.load_results()
        assert len(reloaded) == per_thread * thread_count
        expected = {_records([result])[0]["fingerprint"] for result in results}
        assert {record.fingerprint for record in reloaded} <= expected

    def test_tenant_stamp_and_filtering(self, tmp_path):
        plain = ResultStore(tmp_path / "mixed.jsonl")
        tenant_store = ResultStore(tmp_path / "mixed.jsonl", tenant="alice")
        results = Engine(SPEC, "condition-kset").run_batch(_vectors(2))
        plain.append(results[0])
        tenant_store.append(results[1])
        # The tenant-scoped view filters; all_tenants (and the plain store) see both.
        assert len(tenant_store.load_results()) == 1
        assert len(list(tenant_store.iter_records(all_tenants=True))) == 2
        assert len(plain.load_results()) == 2

    def test_for_tenant_layout_and_validation(self, tmp_path):
        store = ResultStore.for_tenant(tmp_path, "ci")
        assert store.path == tmp_path / "ci.jsonl"
        assert store.tenant == "ci"
        with pytest.raises(InvalidParameterError, match="tenant names"):
            ResultStore.for_tenant(tmp_path, "../escape")


class TestCli:
    def test_demo_workers_and_store(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "demo.jsonl"
        status = main(
            ["demo", "--n", "6", "--t", "2", "--d", "1", "--m", "6",
             "--runs", "4", "--workers", "2", "--store", str(path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "batch            : 4 runs x 2 worker(s)" in out
        assert ResultStore(path).resume_index() == 4

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cells.jsonl"
        status = main(
            ["sweep", "--n", "6", "--t", "2", "--d", "1", "--m", "6",
             "--grid", "d=1,2", "--grid", "k=1,2", "--runs-per-cell", "2",
             "--workers", "2", "--store", str(path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "= 4 cells" in out
        assert len(ResultStore(path).load_cells()) == 4

    def test_sweep_requires_grid(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--n", "6", "--t", "2"]) == 2
        assert "--grid" in capsys.readouterr().err

    def test_parse_grid_types(self):
        from repro.cli import parse_grid

        grid = parse_grid(["d=1,2,3", "condition=max-legal,min-legal"])
        assert grid["d"] == (1, 2, 3)
        assert grid["condition"] == ("max-legal", "min-legal")

    def test_parse_grid_rejects_malformed(self):
        from repro.cli import parse_grid

        with pytest.raises(InvalidParameterError):
            parse_grid(["d"])
        with pytest.raises(InvalidParameterError):
            parse_grid(["d=1", "d=2"])
