"""Shared fixtures for the test suite."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import InputVector, MaxLegalCondition, MaxValues, table1_condition


@pytest.fixture
def rng() -> Random:
    """A deterministic random generator (one per test)."""
    return Random(0xC0FFEE)


@pytest.fixture
def table1():
    """The Table 1 condition and its recognizing function."""
    return table1_condition()


@pytest.fixture
def small_max_condition() -> MaxLegalCondition:
    """A small max_1 condition usable both implicitly and explicitly."""
    return MaxLegalCondition(n=4, domain=3, x=2, ell=1)


@pytest.fixture
def small_max2_condition() -> MaxLegalCondition:
    """A small max_2 condition usable both implicitly and explicitly."""
    return MaxLegalCondition(n=5, domain=3, x=3, ell=2)


@pytest.fixture
def sample_vector() -> InputVector:
    """A vector belonging to the ``small_max_condition`` fixture."""
    return InputVector([3, 3, 3, 1])


@pytest.fixture
def max1() -> MaxValues:
    return MaxValues(1)


@pytest.fixture
def max2() -> MaxValues:
    return MaxValues(2)
