"""Unit tests for the baseline algorithms: FloodMin, FloodSet and early-deciding k-set."""

from __future__ import annotations

import pytest

from repro.algorithms.classic_consensus import FloodSetConsensus
from repro.algorithms.classic_kset import FloodMinKSetAgreement
from repro.algorithms.early_deciding_kset import EarlyDecidingKSetAgreement, EarlyMessage
from repro.analysis.properties import assert_execution_correct
from repro.core.vectors import InputVector
from repro.exceptions import InvalidParameterError
from repro.sync.adversary import (
    CrashEvent,
    CrashSchedule,
    crashes_in_round_one,
    no_crashes,
    staggered_schedule,
)
from repro.sync.runtime import SynchronousSystem


class TestFloodMin:
    def test_parameters(self):
        algorithm = FloodMinKSetAgreement(t=6, k=2)
        assert algorithm.decision_round() == 4
        assert algorithm.max_rounds(9, 6) == 4
        assert algorithm.agreement_degree() == 2
        assert "FloodMin" in algorithm.name
        with pytest.raises(InvalidParameterError):
            FloodMinKSetAgreement(t=-1, k=1)
        with pytest.raises(InvalidParameterError):
            FloodMinKSetAgreement(t=3, k=0)

    def test_failure_free_run_decides_minimum(self):
        algorithm = FloodMinKSetAgreement(t=3, k=1)
        vector = InputVector([5, 2, 8, 4, 6, 3])
        result = SynchronousSystem(6, 3, algorithm).run(vector)
        assert_execution_correct(result, vector, k=1)
        assert result.decided_values() == {2}
        assert result.rounds_executed == algorithm.decision_round()

    def test_agreement_under_staggered_adversary(self):
        algorithm = FloodMinKSetAgreement(t=4, k=2)
        vector = InputVector([8, 7, 6, 5, 4, 3, 2, 1])
        result = SynchronousSystem(8, 4, algorithm).run(
            vector, staggered_schedule(8, 4, per_round=2)
        )
        assert_execution_correct(result, vector, k=2, round_bound=algorithm.decision_round())

    def test_k1_matches_consensus_round_count(self):
        algorithm = FloodMinKSetAgreement(t=3, k=1)
        assert algorithm.decision_round() == 4  # t + 1

    def test_consensus_violation_would_need_more_than_t_crashes(self):
        # With t = 2, k = 1 the adversary below (2 chained crashes) cannot split
        # the processes: everyone must decide the same value.
        algorithm = FloodMinKSetAgreement(t=2, k=1)
        vector = InputVector([1, 5, 5, 5, 5])
        events = [
            CrashEvent.round_one_prefix(0, 1),
            CrashEvent(1, 2, frozenset({2})),
        ]
        result = SynchronousSystem(5, 2, algorithm).run(
            vector, CrashSchedule.from_events(events)
        )
        assert_execution_correct(result, vector, k=1)


class TestFloodSetConsensus:
    def test_parameters(self):
        algorithm = FloodSetConsensus(t=3)
        assert algorithm.decision_round() == 4
        assert algorithm.agreement_degree() == 1
        assert not algorithm.early_stopping
        with pytest.raises(InvalidParameterError):
            FloodSetConsensus(t=-2)

    def test_failure_free_run(self):
        algorithm = FloodSetConsensus(t=2)
        vector = InputVector([4, 9, 1, 7])
        result = SynchronousSystem(4, 2, algorithm).run(vector)
        assert_execution_correct(result, vector, k=1)
        assert result.decided_values() == {1}
        assert result.rounds_executed == 3

    def test_agreement_with_crashes(self):
        algorithm = FloodSetConsensus(t=3)
        vector = InputVector([4, 9, 1, 7, 5, 2])
        result = SynchronousSystem(6, 3, algorithm).run(
            vector, staggered_schedule(6, 3, per_round=1)
        )
        assert_execution_correct(result, vector, k=1, round_bound=algorithm.decision_round())

    def test_early_stopping_failure_free(self):
        algorithm = FloodSetConsensus(t=4, early_stopping=True)
        vector = InputVector([4, 9, 1, 7, 5, 2, 8, 3])
        result = SynchronousSystem(8, 4, algorithm).run(vector)
        assert_execution_correct(result, vector, k=1)
        # f = 0: two rounds suffice (f + 2).
        assert result.max_decision_round_of_correct() == 2

    def test_early_stopping_respects_f_plus_two(self):
        algorithm = FloodSetConsensus(t=4, early_stopping=True)
        vector = InputVector([4, 9, 1, 7, 5, 2, 8, 3])
        for f in range(0, 5):
            schedule = crashes_in_round_one(8, f, delivered_prefix=4) if f else no_crashes()
            result = SynchronousSystem(8, 4, algorithm).run(vector, schedule)
            assert_execution_correct(
                result, vector, k=1, round_bound=min(f + 2, algorithm.decision_round())
            )


class TestEarlyDecidingKSet:
    def test_parameters(self):
        algorithm = EarlyDecidingKSetAgreement(t=6, k=2)
        assert algorithm.last_round() == 4
        assert algorithm.early_bound(0) == 2
        assert algorithm.early_bound(3) == 3
        assert algorithm.early_bound(6) == 4
        assert algorithm.agreement_degree() == 2
        with pytest.raises(InvalidParameterError):
            EarlyDecidingKSetAgreement(t=-1, k=1)
        with pytest.raises(InvalidParameterError):
            EarlyDecidingKSetAgreement(t=3, k=0)

    def test_message_payload(self):
        message = EarlyMessage(estimate=4, early=True)
        assert message.estimate == 4 and message.early

    def test_failure_free_two_rounds(self):
        algorithm = EarlyDecidingKSetAgreement(t=4, k=2)
        vector = InputVector([5, 2, 8, 4, 6, 3, 9, 1])
        result = SynchronousSystem(8, 4, algorithm).run(vector)
        assert_execution_correct(result, vector, k=2, round_bound=2)

    def test_early_bound_over_crash_counts(self):
        n, t, k = 9, 6, 3
        algorithm = EarlyDecidingKSetAgreement(t=t, k=k)
        vector = InputVector([5, 2, 8, 4, 6, 3, 9, 1, 7])
        for f in range(0, t + 1):
            schedule = crashes_in_round_one(n, f, delivered_prefix=3) if f else no_crashes()
            result = SynchronousSystem(n, t, algorithm).run(vector, schedule)
            assert_execution_correct(
                result, vector, k=k, round_bound=algorithm.early_bound(f)
            )

    def test_agreement_under_staggered_adversary(self):
        algorithm = EarlyDecidingKSetAgreement(t=4, k=2)
        vector = InputVector([8, 7, 6, 5, 4, 3, 2, 1])
        result = SynchronousSystem(8, 4, algorithm).run(
            vector, staggered_schedule(8, 4, per_round=2)
        )
        assert_execution_correct(result, vector, k=2, round_bound=algorithm.last_round())
