"""Tests for the asynchronous adversary subsystem (PR 5).

Covers the three scheduler bugfixes (each failing on the pre-PR code), the
pluggable adversary strategies, mid-execution crash points, determinism and
fingerprints, the batched executor, the bounded-interleaving model checker
(including the mutant self-test and serial-vs-parallel parity) and the store
round-trips of async records.
"""

from __future__ import annotations

import pytest

from repro.algorithms.async_condition_set_agreement import (
    AsyncConditionSetAgreementProcess,
    run_async_condition_set_agreement,
)
from repro.api import AgreementSpec, Engine, RunConfig
from repro.asynchronous import (
    AsyncExecutionResult,
    AsyncExecutor,
    AsynchronousProcess,
    AsynchronousScheduler,
    CrashAtStepAdversary,
    EnumeratedAdversary,
    LatencySkewAdversary,
    RoundRobinAdversary,
    SeededRandomAdversary,
    SharedMemory,
    count_interleavings,
    enumerate_interleavings,
    resolve_async_adversary,
)
from repro.check import (
    MUTANT_HASTY_ASYNC,
    AsyncCounterexample,
    count_async_adversaries,
    enumerate_async_adversaries,
    register_mutants,
)
from repro.core.conditions import MaxLegalCondition
from repro.core.values import is_bottom
from repro.exceptions import AdversaryError, InvalidParameterError
from repro.store import ResultStore
from repro.workloads.scenarios import async_scenario
from repro.workloads.vectors import vector_in_max_condition

SPEC = AgreementSpec(n=6, t=2, k=1, d=0, ell=1, domain=8)
VECTOR = vector_in_max_condition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell, 5)


class DecideAfter(AsynchronousProcess):
    """Decides its proposal after a fixed number of steps."""

    def __init__(self, process_id, n, memory, threshold=3):
        super().__init__(process_id, n, memory)
        self._threshold = threshold

    def execute_step(self) -> None:
        if self.steps_taken >= self._threshold:
            self.decide(self.proposal)


class Stubborn(AsynchronousProcess):
    """Never decides — the spinning process of the budget regression."""

    def execute_step(self) -> None:
        return None


# ----------------------------------------------------------------------
# Satellite bugfix 1: the per-process step budget
# ----------------------------------------------------------------------
class TestPerProcessBudget:
    def test_no_process_exceeds_its_budget(self):
        """Regression: the old scheduler enforced only a *global* budget of
        ``n * max_steps_per_process``, so a process running alone could take
        the whole system's budget (and a spinner could starve the rest)."""
        memory = SharedMemory(3)
        processes = [DecideAfter(pid, 3, memory, threshold=8) for pid in range(3)]
        result = AsynchronousScheduler(seed=0, max_steps_per_process=5).run(
            processes, [1, 2, 3], crashed=[1, 2]
        )
        # Old code: the single live process takes 8 <= 15 global steps and
        # decides.  New code: its own 5-step cap stops it first.
        assert result.steps_by_process[0] == 5
        assert not result.terminated
        assert result.decisions == {}

    def test_spinner_cannot_starve_the_rest(self):
        """A spinning process stops being scheduled at its cap, so the other
        processes still receive their full budget."""
        memory = SharedMemory(2)
        processes = [
            Stubborn(0, 2, memory),
            DecideAfter(1, 2, memory, threshold=4),
        ]
        # The skew adversary heavily favours process 0 (smallest latency):
        # without per-process caps it would spin process 0 forever.
        result = AsynchronousScheduler(
            max_steps_per_process=6, adversary=LatencySkewAdversary(skew=100.0)
        ).run(processes, [9, 7])
        assert result.decisions == {1: 7}
        assert result.steps_by_process[0] == 6  # capped, not starved into 12
        assert max(result.steps_by_process.values()) <= 6

    def test_budget_exhaustion_reported(self):
        memory = SharedMemory(2)
        processes = [Stubborn(pid, 2, memory) for pid in range(2)]
        result = AsynchronousScheduler(seed=0, max_steps_per_process=5).run(
            processes, [1, 2]
        )
        assert not result.terminated
        assert result.total_steps == 10
        assert result.steps_by_process == {0: 5, 1: 5}


# ----------------------------------------------------------------------
# Satellite bugfix 2: the proposals lookup
# ----------------------------------------------------------------------
class TestProposalValidation:
    def _processes(self, n=3):
        memory = SharedMemory(n)
        return [DecideAfter(pid, n, memory) for pid in range(n)]

    def test_mapping_missing_pid_names_the_process(self):
        """Regression: a mapping without an entry for some pid escaped as a
        raw ``KeyError`` from the duplicated Mapping/Sequence branch."""
        with pytest.raises(InvalidParameterError, match="process 2"):
            AsynchronousScheduler().run(self._processes(), {0: 1, 1: 2})

    def test_short_sequence_names_the_process(self):
        """Regression: a too-short sequence escaped as ``IndexError``."""
        with pytest.raises(InvalidParameterError, match="process 2"):
            AsynchronousScheduler().run(self._processes(), [1, 2])

    def test_mapping_and_sequence_both_accepted(self):
        mapping = AsynchronousScheduler(seed=1).run(self._processes(), {0: 5, 1: 6, 2: 7})
        sequence = AsynchronousScheduler(seed=1).run(self._processes(), [5, 6, 7])
        assert mapping.decisions == sequence.decisions == {0: 5, 1: 6, 2: 7}


# ----------------------------------------------------------------------
# Satellite bugfix 3: terminated defaults to False
# ----------------------------------------------------------------------
class TestTerminatedDefault:
    def test_blank_result_reads_as_non_termination(self):
        """Regression: a zero-step / partially-populated result used to read
        as a successful termination (``terminated=True`` by default)."""
        assert AsyncExecutionResult(n=3).terminated is False

    def test_scheduler_sets_it_from_the_live_check(self):
        memory = SharedMemory(2)
        processes = [DecideAfter(pid, 2, memory, threshold=1) for pid in range(2)]
        result = AsynchronousScheduler().run(processes, [4, 4])
        assert result.terminated is True


# ----------------------------------------------------------------------
# Adversary strategies
# ----------------------------------------------------------------------
class TestAdversaries:
    def test_resolution_default_matches_seed_contract(self):
        assert isinstance(resolve_async_adversary(None, None), RoundRobinAdversary)
        assert isinstance(resolve_async_adversary(None, 3), SeededRandomAdversary)
        skew = LatencySkewAdversary()
        assert resolve_async_adversary(skew, 3) is skew
        with pytest.raises(AdversaryError):
            resolve_async_adversary("no-such-strategy", 0)

    def test_name_and_instance_agree(self):
        engine = Engine(SPEC, "condition-kset")
        by_name = engine.run(VECTOR, backend="async", async_adversary="round-robin")
        by_instance = engine.run(
            VECTOR, backend="async", async_adversary=RoundRobinAdversary()
        )
        assert by_name.fingerprint == by_instance.fingerprint
        assert by_name.decisions == by_instance.decisions

    def test_config_default_is_the_seeded_random_strategy(self):
        engine = Engine(SPEC, "condition-kset")
        default = engine.run(VECTOR, backend="async", seed=9)
        explicit = engine.run(
            VECTOR, backend="async", seed=9, async_adversary=SeededRandomAdversary(9)
        )
        assert default.fingerprint == explicit.fingerprint

    def test_latency_skew_is_deterministic_and_safe(self):
        engine = Engine(SPEC, "condition-kset")
        first = engine.run(VECTOR, backend="async", async_adversary="latency-skew")
        second = engine.run(VECTOR, backend="async", async_adversary="latency-skew")
        assert first.fingerprint == second.fingerprint
        assert first.terminated
        assert first.distinct_decision_count() <= SPEC.ell

    def test_crash_at_step_wrapper_carries_crash_points(self):
        condition = MaxLegalCondition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell)
        adversary = CrashAtStepAdversary(RoundRobinAdversary(), {5: 1})
        result = run_async_condition_set_agreement(
            condition, SPEC.x, VECTOR, adversary=adversary
        )
        assert result.crashed == frozenset({5})
        assert result.steps_by_process[5] == 1
        assert result.terminated

    def test_enumerated_prefix_then_round_robin(self):
        memory = SharedMemory(3)
        processes = [DecideAfter(pid, 3, memory, threshold=2) for pid in range(3)]
        result = AsynchronousScheduler(
            adversary=EnumeratedAdversary((2, 2, 2, 2))
        ).run(processes, [1, 2, 3])
        # The prefix drives p2 to its decision first (choices index into the
        # runnable list, which shrinks once p2 decides), then round-robin
        # finishes the others.
        assert result.step_sequence[:2] == (2, 2)
        assert result.decision_steps[2] == 2
        assert result.terminated

    def test_adversary_returning_non_runnable_pid_rejected(self):
        class Rogue(RoundRobinAdversary):
            def choose(self, runnable, step_index):
                return 99

        memory = SharedMemory(2)
        processes = [DecideAfter(pid, 2, memory) for pid in range(2)]
        with pytest.raises(AdversaryError):
            AsynchronousScheduler(adversary=Rogue()).run(processes, [1, 2])

    def test_adversary_stepping_a_crashed_process_rejected(self):
        """A strategy ignoring the runnable list must not step a process past
        its crash point (or its budget) — that would hang the run forever."""

        class StuckOnZero(RoundRobinAdversary):
            def choose(self, runnable, step_index):
                return 0

        memory = SharedMemory(3)
        processes = [Stubborn(pid, 3, memory) for pid in range(3)]
        with pytest.raises(AdversaryError):
            AsynchronousScheduler(
                adversary=StuckOnZero(), max_steps_per_process=5
            ).run(processes, [1, 2, 3], crash_steps={0: 1})


# ----------------------------------------------------------------------
# Determinism and fingerprints
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_same_result(self):
        engine = Engine(SPEC, "condition-kset")
        first = engine.run(VECTOR, backend="async", seed=11)
        second = engine.run(VECTOR, backend="async", seed=11)
        assert first.decisions == second.decisions
        assert first.decision_times == second.decision_times
        assert first.duration == second.duration
        assert first.fingerprint == second.fingerprint
        assert first.raw.step_sequence == second.raw.step_sequence

    def test_different_seeds_change_the_interleaving(self):
        engine = Engine(SPEC, "condition-kset")
        fingerprints = {
            engine.run(VECTOR, backend="async", seed=seed).fingerprint
            for seed in range(6)
        }
        assert len(fingerprints) > 1

    def test_sync_results_carry_no_fingerprint(self):
        assert Engine(SPEC, "condition-kset").run(VECTOR).fingerprint is None


# ----------------------------------------------------------------------
# Mid-execution crash points
# ----------------------------------------------------------------------
class TestCrashSteps:
    def test_pre_crash_writes_stay_visible(self):
        """A process crashing after its write leaves the proposal in the
        shared memory — the regime the initial-crash modelling collapsed."""
        n, m, x, ell = 3, 4, 1, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 2)
        memory = SharedMemory(n)
        processes = [
            AsyncConditionSetAgreementProcess(pid, n, memory, condition, x)
            for pid in range(n)
        ]
        result = AsynchronousScheduler(adversary="round-robin").run(
            processes, list(vector), crash_steps={2: 1}
        )
        assert result.crashed == frozenset({2})
        assert result.steps_by_process[2] == 1
        assert not is_bottom(memory.snapshot_proposals()[2])  # the write landed
        assert 2 not in result.decisions
        assert result.terminated

    def test_initial_crash_keeps_the_register_bottom(self):
        n, m, x, ell = 3, 4, 1, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 2)
        memory = SharedMemory(n)
        processes = [
            AsyncConditionSetAgreementProcess(pid, n, memory, condition, x)
            for pid in range(n)
        ]
        result = AsynchronousScheduler(adversary="round-robin").run(
            processes, list(vector), crash_steps={2: 0}
        )
        assert is_bottom(memory.snapshot_proposals()[2])
        assert result.crashed == frozenset({2})

    def test_deciding_before_the_crash_point_is_surviving(self):
        engine = Engine(SPEC, "condition-kset")
        result = engine.run(
            VECTOR, backend="async", async_adversary="round-robin",
            crash_steps={0: 50},
        )
        assert 0 in result.decisions
        assert result.crashed == frozenset()

    def test_schedule_rounds_project_onto_crash_points(self):
        """A round-2 schedule crash is no longer an initial crash: the
        process takes its pre-crash step and its write stays visible."""
        from repro.sync.adversary import CrashEvent, CrashSchedule

        engine = Engine(SPEC, "condition-kset")
        schedule = CrashSchedule.from_events([CrashEvent(5, 2, frozenset())])
        result = engine.run(VECTOR, schedule, backend="async", seed=1)
        assert result.crashed == frozenset({5})
        assert result.raw.crash_steps == {5: 1}
        assert result.raw.steps_by_process[5] == 1

    def test_crash_steps_validated(self):
        engine = Engine(SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            engine.run(VECTOR, backend="async", crash_steps={99: 0})
        with pytest.raises(InvalidParameterError):
            engine.run(VECTOR, backend="async", crash_steps={0: -1})
        with pytest.raises(InvalidParameterError):
            engine.run(VECTOR, crash_steps={0: 1})  # sync backend rejects it


# ----------------------------------------------------------------------
# The batched executor
# ----------------------------------------------------------------------
class TestAsyncExecutor:
    def _factory(self):
        condition = MaxLegalCondition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell)
        return lambda pid, n, memory: AsyncConditionSetAgreementProcess(
            pid, n, memory, condition, SPEC.x
        )

    def test_reuse_matches_fresh_construction(self):
        executor = AsyncExecutor(SPEC.n, self._factory())
        condition = MaxLegalCondition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell)
        for seed in range(4):
            reused = executor.run(list(VECTOR), seed=seed)
            fresh = run_async_condition_set_agreement(
                condition, SPEC.x, VECTOR, seed=seed
            )
            assert reused.decisions == fresh.decisions
            assert reused.step_sequence == fresh.step_sequence
            assert reused.fingerprint == fresh.fingerprint
        assert executor.runs_executed == 4

    def test_reset_clears_cross_run_state(self):
        executor = AsyncExecutor(SPEC.n, self._factory())
        first = executor.run(list(VECTOR), seed=0, crash_steps={0: 0})
        second = executor.run(list(VECTOR), seed=0)
        assert first.crashed == frozenset({0})
        assert second.crashed == frozenset()  # the crash did not leak
        assert executor.memory.write_count > 0  # counters reset per run

    def test_engine_reuses_one_substrate_per_spec(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        engine.run_batch([VECTOR] * 5)
        assert engine._async_executor().runs_executed == 5


# ----------------------------------------------------------------------
# Engine integration: batches, sweeps, parallel parity
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def _vectors(self, count=12):
        return [
            vector_in_max_condition(SPEC.n, SPEC.domain, SPEC.x, SPEC.ell, seed)
            for seed in range(count)
        ]

    def test_async_batch_parallel_parity_is_byte_identical(self):
        vectors = self._vectors()
        config = RunConfig(backend="async", seed=7)
        serial = Engine(SPEC, "condition-kset", config).run_batch(
            vectors, chunk_size=3
        )
        parallel = Engine(SPEC, "condition-kset", config).run_batch(
            vectors, chunk_size=3, workers=4
        )
        assert [r.to_record() for r in serial] == [r.to_record() for r in parallel]
        assert all(r.fingerprint for r in serial)

    def test_batch_adversary_and_crash_steps_thread_through_workers(self):
        vectors = self._vectors(8)
        config = RunConfig(backend="async", seed=3)
        kwargs = dict(async_adversary="latency-skew", crash_steps={5: 1})
        serial = Engine(SPEC, "condition-kset", config).run_batch(vectors, **kwargs)
        parallel = Engine(SPEC, "condition-kset", config).run_batch(
            vectors, workers=2, **kwargs
        )
        assert [r.to_record() for r in serial] == [r.to_record() for r in parallel]
        assert all(r.crashed == frozenset({5}) for r in serial)

    def test_parallel_batch_rejects_adversary_instances(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        with pytest.raises(InvalidParameterError):
            engine.run_batch(
                self._vectors(4), workers=2, async_adversary=RoundRobinAdversary()
            )

    def test_async_sweep_parallel_parity(self):
        config = RunConfig(backend="async", seed=2)
        grid = {"d": (0, 1)}
        serial = Engine(SPEC, "condition-kset", config).sweep(
            grid, runs_per_cell=3, async_adversary="round-robin"
        )
        parallel = Engine(SPEC, "condition-kset", config).sweep(
            grid, runs_per_cell=3, async_adversary="round-robin", workers=2
        )
        for cell_a, cell_b in zip(serial, parallel):
            assert [r.to_record() for r in cell_a.results] == [
                r.to_record() for r in cell_b.results
            ]

    def test_store_round_trips_async_records(self, tmp_path):
        store = ResultStore(tmp_path / "async.jsonl")
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async", seed=4))
        produced = engine.run_batch(self._vectors(5), store=store)
        reloaded = store.load_results()
        assert [r.to_record() for r in reloaded] == [r.to_record() for r in produced]
        assert all(r.backend == "async" for r in reloaded)
        assert all(r.fingerprint for r in reloaded)


# ----------------------------------------------------------------------
# The bounded-interleaving model checker
# ----------------------------------------------------------------------
class TestAsyncCheck:
    CHECK_SPEC = AgreementSpec(n=3, t=1, k=1, d=0, ell=1, domain=2)

    def test_interleaving_count_matches_closed_form(self):
        for n, depth in ((1, 3), (2, 4), (3, 3)):
            generated = sum(1 for _ in enumerate_interleavings(n, depth))
            assert generated == count_interleavings(n, depth) == n**depth

    def test_adversary_count_matches_closed_form(self):
        for n, depth, crashes in ((2, 2, 1), (3, 2, 1), (3, 3, 2)):
            generated = sum(
                1 for _ in enumerate_async_adversaries(n, depth, crashes)
            )
            assert generated == count_async_adversaries(n, depth, crashes)

    def test_reference_algorithm_passes(self):
        report = Engine(self.CHECK_SPEC, "condition-kset").check(
            backend="async", depth=2
        )
        assert report.passed, report.render()
        assert report.executions == report.adversary_count * report.vector_count
        assert report.tally("async-termination-in-condition").checked > 0
        assert report.tally("async-step-budget").violations == 0

    def test_serial_vs_parallel_reports_byte_identical(self):
        serial = Engine(self.CHECK_SPEC, "condition-kset").check(
            backend="async", depth=2
        )
        parallel = Engine(self.CHECK_SPEC, "condition-kset").check(
            backend="async", depth=2, workers=4
        )
        assert serial.to_record() == parallel.to_record()

    def test_mutant_is_caught_and_replayable(self, tmp_path):
        register_mutants()
        spec = AgreementSpec(n=3, t=1, k=1, d=0, ell=1, domain=3)
        store = ResultStore(tmp_path / "async-ce.jsonl")
        report = Engine(spec, MUTANT_HASTY_ASYNC).check(
            backend="async", depth=4, max_crashes=0, vectors=[[3, 1, 1]],
            store=store,
        )
        assert not report.passed
        assert report.tally("async-agreement").violations > 0
        counterexample = report.counterexamples[0]
        replayed = counterexample.replay()
        assert replayed.fingerprint == counterexample.fingerprint
        assert replayed.distinct_decision_count() > spec.ell
        # The stored record reloads into an equal, replayable counterexample.
        reloaded = store.load_async_counterexamples()
        assert [ce.to_record() for ce in reloaded] == [
            ce.to_record() for ce in report.counterexamples
        ]
        assert AsyncCounterexample.from_record(
            counterexample.to_record()
        ).prefix == counterexample.prefix

    def test_sync_and_async_knobs_do_not_mix(self):
        engine = Engine(self.CHECK_SPEC, "condition-kset")
        with pytest.raises(InvalidParameterError):
            engine.check(backend="async", rounds=2)
        with pytest.raises(InvalidParameterError):
            engine.check(depth=2)

    def test_unknown_check_backend_rejected(self):
        """A typo'd backend must not silently fall through to the sync checker."""
        from repro.exceptions import BackendError

        engine = Engine(self.CHECK_SPEC, "condition-kset")
        with pytest.raises(BackendError):
            engine.check(backend="Async")

    def test_scenario_check_entry_point(self):
        scenario = async_scenario(3, 2, 1, 1, adversary="round-robin")
        result = scenario.run()
        assert result.terminated
        assert result.crashed == frozenset(dict(scenario.crash_steps))
        report = scenario.check(depth=2)
        assert report.passed
        batch = scenario.batch(runs=3)
        assert len(batch) == 3 and all(r.terminated for r in batch)


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestCli:
    def test_check_backend_async(self, capsys):
        from repro.cli import main

        status = main(
            [
                "check", "--backend", "async", "--n", "3", "--t", "1", "--d", "0",
                "--m", "2", "--depth", "2",
            ]
        )
        assert status == 0
        assert "async-agreement" in capsys.readouterr().out

    def test_demo_async_adversary(self, capsys):
        from repro.cli import main

        status = main(
            [
                "demo", "--backend", "async", "--adversary", "latency-skew",
                "--n", "6", "--t", "2", "--d", "1", "--m", "6",
            ]
        )
        assert status == 0
        assert "steps" in capsys.readouterr().out
