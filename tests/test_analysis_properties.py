"""Unit tests for the property checkers and round measurement helpers."""

from __future__ import annotations

import pytest

from repro.analysis.properties import (
    PropertyReport,
    assert_execution_correct,
    check_agreement,
    check_execution,
    check_round_bound,
    check_termination,
    check_validity,
)
from repro.analysis.rounds import RoundMeasurement, adversarial_schedules, measure_worst_rounds
from repro.analysis.tables import format_check, format_table
from repro.algorithms.classic_kset import FloodMinKSetAgreement
from repro.asynchronous.scheduler import AsyncExecutionResult
from repro.core.vectors import InputVector
from repro.exceptions import AgreementViolationError
from repro.sync.runtime import ExecutionResult


def make_result(**overrides) -> ExecutionResult:
    base = dict(
        n=3,
        t=1,
        input_vector=InputVector([1, 2, 3]),
        decisions={0: 1, 1: 1, 2: 2},
        decision_rounds={0: 2, 1: 2, 2: 3},
        crash_rounds={},
        rounds_executed=3,
    )
    base.update(overrides)
    return ExecutionResult(**base)


class TestPropertyReport:
    def test_merge_and_bool(self):
        good, bad = PropertyReport(), PropertyReport()
        bad.record("problem")
        merged = good.merge(bad)
        assert not merged
        assert merged.failures == ["problem"]
        assert bool(good)


class TestCheckers:
    def test_termination_ok(self):
        assert check_termination(make_result())

    def test_termination_failure(self):
        report = check_termination(make_result(decisions={0: 1}))
        assert not report
        assert "never decided" in report.failures[0]

    def test_termination_ignores_crashed(self):
        result = make_result(decisions={0: 1, 1: 1}, crash_rounds={2: 1})
        assert check_termination(result)

    def test_async_termination_flag(self):
        result = AsyncExecutionResult(n=2, decisions={0: 1, 1: 1}, terminated=False)
        assert not check_termination(result)

    def test_validity(self):
        assert check_validity(make_result(), InputVector([1, 2, 3]))
        report = check_validity(make_result(decisions={0: 9}), InputVector([1, 2, 3]))
        assert not report
        assert check_validity(make_result(), [1, 2, 3])

    def test_agreement(self):
        assert check_agreement(make_result(), k=2)
        assert not check_agreement(make_result(), k=1)

    def test_round_bound(self):
        assert check_round_bound(make_result(), bound=3)
        assert not check_round_bound(make_result(), bound=2)
        # Crashed processes' decision rounds are ignored.
        result = make_result(crash_rounds={2: 3})
        assert check_round_bound(result, bound=2)

    def test_check_execution_combines_everything(self):
        report = check_execution(make_result(), InputVector([1, 2, 3]), k=2, round_bound=3)
        assert report
        report = check_execution(make_result(), InputVector([1, 2, 3]), k=1, round_bound=2)
        assert len(report.failures) == 2

    def test_assert_execution_correct(self):
        assert_execution_correct(make_result(), InputVector([1, 2, 3]), k=2)
        with pytest.raises(AgreementViolationError):
            assert_execution_correct(make_result(), InputVector([1, 2, 3]), k=1)


class TestRoundMeasurement:
    def test_adversarial_schedules_are_valid(self):
        schedules = adversarial_schedules(n=6, t=3, k=2, last_round=3, rng=0, random_runs=5)
        assert len(schedules) > 5
        for schedule in schedules:
            schedule.validate(n=6, t=3)

    def test_measure_worst_rounds(self):
        algorithm = FloodMinKSetAgreement(t=3, k=1)
        schedules = adversarial_schedules(n=6, t=3, k=1, last_round=4, rng=1, random_runs=5)
        vector = InputVector([6, 5, 4, 3, 2, 1])
        measurement = measure_worst_rounds(algorithm, 6, 3, vector, schedules, k=1)
        assert isinstance(measurement, RoundMeasurement)
        assert measurement.runs == len(schedules)
        assert measurement.worst_round == algorithm.decision_round()
        assert measurement.worst_agreement == 1
        assert measurement.within(algorithm.decision_round())
        assert not measurement.within(algorithm.decision_round() - 1)


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": True}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/body aligned
        assert "yes" in text  # booleans rendered as yes/no

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_check(self):
        assert format_check("ok", True).startswith("[PASS]")
        assert format_check("ko", False).startswith("[FAIL]")
