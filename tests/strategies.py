"""Shared Hypothesis strategies for the property-based test suite.

Hoisted from ``test_property_core``, ``test_property_legality`` and
``test_property_algorithms`` so every property file draws vectors, views,
parameter tuples and crash schedules from the same definitions.

* :data:`small_params` / :data:`legality_params` — ``(n, m, x, ell)``
  tuples sized for the conditions framework and the (costlier) legality
  checks respectively;
* :func:`vectors` / :func:`views` — input vectors and partial views over
  ``{1..m}``;
* :func:`vector_batches` — non-empty same-size vector tuples, the exact
  shape :meth:`repro.vec.PackedBlock.pack` accepts (one lane per vector);
* :func:`crash_schedules` — valid :class:`~repro.sync.adversary.CrashSchedule`
  draws for an ``(n, t)`` system with crash rounds in ``[1, max_round]``:
  round-1 crashes deliver a prefix (the ordered send phase), later crashes
  an arbitrary receiver subset — by construction the same space that
  :func:`repro.sync.adversary.enumerate_schedules` enumerates exhaustively;
* :func:`omission_assignments` / :func:`lost_message_sets` — net
  failure-model draws: static per-victim omission sets (the
  ``send-omission`` / ``receive-omission`` fault shape) and concrete
  ``(round, sender, receiver)`` loss sets (the enumerated ``message-loss``
  shape), both inside the space :func:`repro.net.adversary.enumerate_faults`
  covers exhaustively.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.values import BOTTOM
from repro.core.vectors import InputVector, View
from repro.sync.adversary import CrashEvent, CrashSchedule

__all__ = [
    "small_params",
    "legality_params",
    "vector_batches",
    "vectors",
    "views",
    "crash_schedules",
    "omission_assignments",
    "lost_message_sets",
]

#: ``(n, m, x, ell)`` tuples for the conditions framework: n in 2..5,
#: m in 2..3, 0 <= x < n, ell in 1..3.
small_params = st.tuples(
    st.integers(min_value=2, max_value=5),   # n
    st.integers(min_value=2, max_value=3),   # m
).flatmap(
    lambda nm: st.tuples(
        st.just(nm[0]),
        st.just(nm[1]),
        st.integers(min_value=0, max_value=nm[0] - 1),  # x
        st.integers(min_value=1, max_value=3),           # ell
    )
)

#: Smaller ``(n, m, x, ell)`` tuples for the exponential legality checks:
#: n in 2..4, ell capped at 2.
legality_params = st.tuples(
    st.integers(min_value=2, max_value=4),  # n
    st.integers(min_value=2, max_value=3),  # m
).flatmap(
    lambda nm: st.tuples(
        st.just(nm[0]),
        st.just(nm[1]),
        st.integers(min_value=0, max_value=nm[0] - 1),  # x
        st.integers(min_value=1, max_value=2),           # ell
    )
)


def vectors(n: int, m: int):
    """A strategy of input vectors of size *n* over ``{1..m}``."""
    return st.lists(
        st.integers(min_value=1, max_value=m), min_size=n, max_size=n
    ).map(InputVector)


def vector_batches(n: int, m: int, max_lanes: int = 8):
    """A strategy of non-empty tuples of size-*n* vectors over ``{1..m}``.

    Each draw is one packable batch: lane ``j`` of the resulting
    :class:`repro.vec.PackedBlock` holds the ``j``-th vector.
    """
    return st.lists(vectors(n, m), min_size=1, max_size=max_lanes).map(tuple)


def views(n: int, m: int, max_bottoms: int | None = None):
    """A strategy of views of size *n* over ``{1..m}`` with a bounded number of ⊥."""
    entry = st.one_of(st.just(BOTTOM), st.integers(min_value=1, max_value=m))
    strategy = st.lists(entry, min_size=n, max_size=n).map(View)
    if max_bottoms is not None:
        strategy = strategy.filter(lambda v: v.bottom_count() <= max_bottoms)
    return strategy


@st.composite
def crash_schedules(draw, n: int, t: int, max_round: int):
    """Up to *t* crash events with valid round-1 prefixes and arbitrary later subsets."""
    victim_count = draw(st.integers(min_value=0, max_value=t))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True,
            min_size=victim_count,
            max_size=victim_count,
        )
    )
    events = []
    for victim in victims:
        round_number = draw(st.integers(min_value=1, max_value=max_round))
        if round_number == 1:
            prefix = draw(st.integers(min_value=0, max_value=n))
            events.append(CrashEvent.round_one_prefix(victim, prefix))
        else:
            receivers = draw(
                st.frozensets(st.integers(min_value=0, max_value=n - 1), max_size=n)
            )
            events.append(CrashEvent(victim, round_number, receivers))
    return CrashSchedule.from_events(events)


@st.composite
def omission_assignments(draw, n: int, t: int):
    """Up to *t* omission victims, each with a non-empty non-self receiver set.

    The drawn ``{victim: frozenset(receivers)}`` mapping is exactly the
    constructor shape of :class:`repro.net.adversary.SendOmissionAdversary`
    and :class:`~repro.net.adversary.ReceiveOmissionAdversary` (for the
    latter the "receivers" are the senders the victim fails to hear).
    """
    victim_count = draw(st.integers(min_value=0, max_value=min(t, n)))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True,
            min_size=victim_count,
            max_size=victim_count,
        )
    )
    assignment = {}
    for victim in victims:
        others = [pid for pid in range(n) if pid != victim]
        receivers = draw(
            st.frozensets(st.sampled_from(others), min_size=1, max_size=len(others))
        )
        assignment[victim] = receivers
    return assignment


@st.composite
def lost_message_sets(draw, n: int, rounds: int, max_faults: int):
    """Up to *max_faults* concrete lost channels ``(round, sender, receiver)``.

    The drawn frozenset is the constructor shape of
    :class:`repro.net.adversary.EnumeratedMessageLoss` — one fully specified
    point of the enumerated ``message-loss`` fault space.
    """
    channels = [
        (round_number, sender, receiver)
        for round_number in range(1, rounds + 1)
        for sender in range(n)
        for receiver in range(n)
        if sender != receiver
    ]
    loss_count = draw(st.integers(min_value=0, max_value=min(max_faults, len(channels))))
    lost = draw(
        st.lists(
            st.sampled_from(channels),
            unique=True,
            min_size=loss_count,
            max_size=loss_count,
        )
    )
    return frozenset(lost)
