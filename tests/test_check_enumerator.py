"""The schedule enumerator: generated = counted, unique, valid, complete.

Three cross-validations back the "exhaustive" claim of :mod:`repro.check`:

* the generator produces exactly :func:`count_schedules` schedules on every
  ``n <= 4, t <= 2`` system (the closed form and the enumeration are
  independent derivations of the same space);
* every generated schedule is unique (by canonical form) and passes
  :meth:`CrashSchedule.validate`;
* :func:`random_schedule` — the sampling adversary the rest of the suite
  relies on — only ever produces schedules that lie inside the enumerated
  space (a Hypothesis property, plus an exact set-membership check on a
  system small enough to materialize).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import crash_schedules

from repro.exceptions import AdversaryError
from repro.sync.adversary import (
    CrashEvent,
    CrashSchedule,
    count_schedules,
    enumerate_schedules,
    random_schedule,
)

#: Every (n, t) system the exhaustive tests cover, with the round depths
#: used by the checker (the unconditional deadline is 2 or 3 there).
SYSTEMS = [
    (n, t, rounds)
    for n in (2, 3, 4)
    for t in range(0, min(2, n - 1) + 1)
    for rounds in (1, 2)
] + [(3, 1, 3), (3, 2, 3), (4, 1, 3)]


class TestCountCrossValidation:
    @pytest.mark.parametrize("n,t,rounds", SYSTEMS)
    def test_generated_count_matches_closed_form(self, n, t, rounds):
        generated = sum(1 for _ in enumerate_schedules(n, t, rounds))
        assert generated == count_schedules(n, t, rounds)

    @pytest.mark.parametrize("n,t,rounds", SYSTEMS)
    def test_schedules_unique_and_valid(self, n, t, rounds):
        seen = set()
        for schedule in enumerate_schedules(n, t, rounds):
            key = schedule.canonical()
            assert key not in seen, f"duplicate schedule {key}"
            seen.add(key)
            schedule.validate(n, t)  # raises on an illegal schedule
            assert all(event.round_number <= rounds for event in schedule)
        assert len(seen) == count_schedules(n, t, rounds)

    def test_max_crashes_restricts_the_space(self):
        # Budget 0 leaves only the failure-free schedule; budget t is the default.
        assert count_schedules(4, 2, 2, max_crashes=0) == 1
        assert count_schedules(4, 2, 2, max_crashes=2) == count_schedules(4, 2, 2)
        only = list(enumerate_schedules(4, 2, 2, max_crashes=0))
        assert len(only) == 1 and only[0].crash_count() == 0
        partial = sum(1 for _ in enumerate_schedules(4, 2, 2, max_crashes=1))
        assert partial == count_schedules(4, 2, 2, max_crashes=1) < count_schedules(4, 2, 2)

    def test_closed_form_small_cases_by_hand(self):
        # n=2, t=1, rounds=1: faulty set {} or {p}; a round-1 event is one of
        # the 3 prefixes — 1 + 2*3 = 7.
        assert count_schedules(2, 1, 1) == 7
        # n=3, t=1, rounds=2: events = 4 prefixes + 8 subsets = 12; 1 + 3*12 = 37.
        assert count_schedules(3, 1, 2) == 37

    def test_parameter_validation(self):
        with pytest.raises(AdversaryError):
            count_schedules(0, 0, 1)
        with pytest.raises(AdversaryError):
            count_schedules(3, 3, 1)  # t must stay < n
        with pytest.raises(AdversaryError):
            count_schedules(3, 1, 0)
        with pytest.raises(AdversaryError):
            list(enumerate_schedules(3, 1, 1, max_crashes=-1))


class TestRandomScheduleInsideTheSpace:
    #: The enumerated space of the (3, 1, rounds=2) system, materialized once.
    SPACE = frozenset(s.canonical() for s in enumerate_schedules(3, 1, 2))

    @given(
        crash_count=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_membership_on_a_tiny_system(self, crash_count, seed):
        schedule = random_schedule(3, 1, crash_count, max_round=2, rng=seed)
        assert schedule.canonical() in self.SPACE

    @given(
        params=st.tuples(
            st.integers(min_value=2, max_value=4),  # n
            st.integers(min_value=1, max_value=3),  # rounds
        ).flatmap(
            lambda nr: st.tuples(
                st.just(nr[0]),
                st.integers(min_value=0, max_value=min(2, nr[0] - 1)),  # t
                st.just(nr[1]),
            )
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_structural_membership(self, params, seed):
        """Every random schedule satisfies the structural constraints the
        enumerator generates from: <= t crashes, rounds within [1, max_round],
        round-1 prefixes, receivers within the system."""
        n, t, rounds = params
        schedule = random_schedule(n, t, t, max_round=rounds, rng=seed)
        schedule.validate(n, t)
        assert schedule.crash_count() <= t
        assert all(1 <= event.round_number <= rounds for event in schedule)

    @given(
        data=st.integers(min_value=2, max_value=4).flatmap(
            lambda n: st.tuples(
                st.just(n),
                crash_schedules(n, min(2, n - 1), 2),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_strategy_draws_inside_the_space(self, data):
        """The shared crash_schedules() strategy also lives in the enumerated
        space (checked structurally for n=4, exactly for smaller systems)."""
        n, schedule = data
        t = min(2, n - 1)
        schedule.validate(n, t)
        assert all(1 <= event.round_number <= 2 for event in schedule)
        if n <= 3:
            space = frozenset(s.canonical() for s in enumerate_schedules(n, t, 2))
            assert schedule.canonical() in space


class TestCanonicalForm:
    def test_canonical_is_order_insensitive_and_hashable(self):
        events = [
            CrashEvent(2, 2, frozenset({0, 1})),
            CrashEvent.round_one_prefix(0, 1),
        ]
        forward = CrashSchedule.from_events(events)
        backward = CrashSchedule.from_events(reversed(events))
        assert forward.canonical() == backward.canonical()
        assert hash(forward.canonical()) == hash(backward.canonical())
        assert forward.canonical() == ((0, 1, (0,)), (2, 2, (0, 1)))
