"""Tests for :mod:`repro.serve` — the agreement-as-a-service daemon.

Covers the serving stack layer by layer and then end to end against a live
server:

* deterministic engine teardown (:meth:`~repro.api.Engine.close`, the
  :class:`~repro.asynchronous.executor.AsyncExecutor` lifecycle) and the
  explicit-seed plumbing (``run_batch(seeds=...)``, ``sweep(seed=...)``)
  that lets one warm engine serve many per-request seeds byte-identically;
* the spec-keyed :class:`~repro.serve.EngineCache` (hit/miss/LRU eviction,
  eviction closes engines);
* :class:`~repro.serve.AdmissionController` and
  :class:`~repro.serve.TenantQuotas` (bounded concurrency, bounded queue,
  429-style rejections, budgets);
* the :class:`~repro.serve.BatchCoalescer` (load-adaptive merging, error
  propagation);
* a live :class:`~repro.serve.ReproServer` driven through
  :class:`~repro.serve.ServeClient`: every endpoint, byte-identity with the
  direct engine on both backends, warm-cache hits, eviction under a tiny
  bound, quota and admission rejection, request coalescing, per-tenant
  result stores, streaming batches and graceful shutdown.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import AgreementSpec, Engine, RunConfig
from repro.cli import build_parser
from repro.exceptions import (
    AdmissionError,
    InvalidParameterError,
    QuotaExceededError,
    ServeError,
    SimulationError,
)
from repro.serve import (
    AdmissionController,
    BatchCoalescer,
    EngineCache,
    ReproServer,
    ServeClient,
    TenantQuotas,
)
from repro.store import ResultStore
from repro.workloads.vectors import vector_in_max_condition

SPEC = AgreementSpec(n=4, t=2, k=2, d=1, ell=1, domain=5)
OTHER_SPEC = AgreementSpec(n=5, t=2, k=2, d=1, ell=1, domain=5)
CHECK_SPEC = AgreementSpec(n=3, t=1, k=1, d=1, ell=1, domain=2)


def _vectors(count: int, spec: AgreementSpec = SPEC) -> list[list[int]]:
    return [
        list(vector_in_max_condition(spec.n, spec.domain, spec.x, spec.ell, seed).entries)
        for seed in range(count)
    ]


def _canon(results) -> list[str]:
    return [json.dumps(result.to_record(), sort_keys=True) for result in results]


@pytest.fixture
def server():
    with ReproServer(port=0) as instance:
        yield instance


@pytest.fixture
def client(server):
    return ServeClient(*server.address)


class TestEngineTeardown:
    """Satellite: deterministic resource teardown on the engine facade."""

    def test_close_tears_down_the_async_substrate(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        engine.run(_vectors(1)[0])
        executor = engine._async_executor_cache
        assert executor is not None and not executor.closed
        engine.close()
        assert executor.closed
        assert engine._async_executor_cache is None

    def test_closed_executor_refuses_to_run(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        engine.run(_vectors(1)[0])
        executor = engine._async_executor_cache
        engine.close()
        with pytest.raises(SimulationError, match="closed"):
            executor.run(_vectors(1)[0])

    def test_executor_close_is_idempotent(self):
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        engine.run(_vectors(1)[0])
        executor = engine._async_executor_cache
        engine.close()
        executor.close()
        assert executor.closed

    def test_close_is_recoverable(self):
        """A closed engine rebuilds its substrate on the next run, identically."""
        engine = Engine(SPEC, "condition-kset", RunConfig(backend="async"))
        vector = _vectors(1)[0]
        before = engine.run(vector)
        engine.close()
        after = engine.run(vector)
        assert engine._async_executor_cache is not None
        assert _canon([after]) == _canon([before])

    def test_context_manager_closes(self):
        with Engine(SPEC, "condition-kset", RunConfig(backend="async")) as engine:
            engine.run(_vectors(1)[0])
            executor = engine._async_executor_cache
        assert executor.closed

    def test_close_clears_sync_state_too(self):
        engine = Engine(SPEC, "condition-kset")
        engine.run(_vectors(1)[0])
        assert engine._system is not None
        engine.close()
        assert engine._system is None
        assert engine.run(_vectors(1)[0]).terminated


class TestExplicitSeeds:
    """Satellite: per-call seeds make warm engines shareable without drift."""

    def test_seeds_reproduce_a_sibling_config(self):
        vectors = _vectors(4)
        direct = Engine(SPEC, "condition-kset", RunConfig(seed=9)).run_batch(vectors)
        shared = Engine(SPEC, "condition-kset", RunConfig(seed=0)).run_batch(
            vectors, seeds=range(9, 13)
        )
        assert _canon(shared) == _canon(direct)

    def test_seeds_reproduce_async_batches(self):
        vectors = _vectors(4)
        direct = Engine(
            SPEC, "condition-kset", RunConfig(backend="async", seed=7)
        ).run_batch(vectors)
        shared = Engine(SPEC, "condition-kset").run_batch(
            vectors, backend="async", seeds=range(7, 11)
        )
        assert _canon(shared) == _canon(direct)

    def test_sized_seed_mismatch_raises(self):
        with pytest.raises(InvalidParameterError, match="explicit seeds"):
            Engine(SPEC, "condition-kset").run_batch(_vectors(3), seeds=[1, 2])

    def test_lazy_seed_exhaustion_raises(self):
        with pytest.raises(InvalidParameterError, match="ran out"):
            Engine(SPEC, "condition-kset").run_batch(
                _vectors(3), seeds=iter([1, 2])
            )

    def test_sweep_seed_override_matches_sibling(self):
        grid = {"d": (1, 2)}
        direct = Engine(SPEC, "condition-kset", RunConfig(seed=5)).sweep(grid, 2)
        shared = Engine(SPEC, "condition-kset").sweep(grid, 2, seed=5)
        assert [
            _canon(cell.results) for cell in shared
        ] == [_canon(cell.results) for cell in direct]


class TestEngineCache:
    def test_hit_returns_the_same_entry(self):
        cache = EngineCache(capacity=2)
        first = cache.get(SPEC)
        second = cache.get(SPEC)
        assert first is second
        assert cache.stats() == {
            "size": 1, "capacity": 2, "hits": 1, "misses": 1, "evictions": 0,
        }
        assert second.hits == 1

    def test_distinct_recipes_are_distinct_entries(self):
        cache = EngineCache(capacity=4)
        assert cache.get(SPEC) is not cache.get(OTHER_SPEC)
        assert cache.get(SPEC) is not cache.get(SPEC, config=RunConfig(crashes=1))
        assert len(cache) == 3

    def test_lru_eviction_closes_the_victim(self):
        cache = EngineCache(capacity=1)
        victim = cache.get(SPEC, config=RunConfig(backend="async"))
        victim.engine.run(_vectors(1)[0])
        executor = victim.engine._async_executor_cache
        cache.get(OTHER_SPEC)  # evicts SPEC's engine
        assert executor.closed
        stats = cache.stats()
        assert stats["size"] == 1 and stats["evictions"] == 1

    def test_lru_order_respects_recency(self):
        cache = EngineCache(capacity=2)
        a = cache.get(SPEC)
        cache.get(OTHER_SPEC)
        cache.get(SPEC)  # refresh A: OTHER becomes the LRU victim
        cache.get(CHECK_SPEC)
        assert cache.get(SPEC) is a  # still cached: a hit, not a rebuild
        assert cache.stats()["evictions"] == 1

    def test_explicit_evict_and_clear(self):
        cache = EngineCache(capacity=4)
        entry = cache.get(SPEC)
        assert cache.evict(entry.key)
        assert not cache.evict(entry.key)
        cache.get(SPEC)
        cache.get(OTHER_SPEC)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            EngineCache(capacity=0)

    def test_entries_describe_engines(self):
        cache = EngineCache()
        cache.get(SPEC)
        (described,) = cache.entries()
        assert described["algorithm"] == "condition-kset"
        assert described["spec"] == SPEC.describe()


class TestAdmissionController:
    def test_rejects_when_slots_and_queue_are_full(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        admission.acquire()
        with pytest.raises(AdmissionError, match="capacity"):
            admission.acquire()
        admission.release()
        admission.acquire()  # a freed slot admits again
        admission.release()
        stats = admission.stats()
        assert stats["admitted"] == 2 and stats["rejected"] == 1
        assert stats["in_flight"] == 0

    def test_queued_request_waits_for_a_slot(self):
        admission = AdmissionController(max_inflight=1, max_queue=1)
        admission.acquire()
        admitted = threading.Event()

        def waiter():
            with admission:
                admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while admission.stats()["queued"] < 1:
            time.sleep(0.001)
        assert not admitted.is_set()
        # Queue full now: a third arrival is rejected while one waits.
        with pytest.raises(AdmissionError):
            admission.acquire()
        admission.release()
        thread.join(timeout=5)
        assert admitted.is_set()

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_inflight=0)
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_queue=-1)


class TestTenantQuotas:
    def test_charges_accumulate_and_reject_over_budget(self):
        quotas = TenantQuotas(default_limit=10)
        quotas.charge("a", 6)
        quotas.charge("a", 4)
        with pytest.raises(QuotaExceededError, match="'a'"):
            quotas.charge("a", 1)
        quotas.charge("b", 10)  # budgets are per tenant
        assert quotas.usage() == {
            "a": {"used": 10, "limit": 10},
            "b": {"used": 10, "limit": 10},
        }
        assert quotas.rejected == 1

    def test_rejected_charge_charges_nothing(self):
        quotas = TenantQuotas(default_limit=5)
        quotas.charge("a", 3)
        with pytest.raises(QuotaExceededError):
            quotas.charge("a", 3)
        quotas.charge("a", 2)  # the failed charge left the budget intact

    def test_overrides_and_unlimited_tracking(self):
        quotas = TenantQuotas(default_limit=5, limits={"big": 100, "free": None})
        quotas.charge("big", 50)
        quotas.charge("free", 10_000)
        assert quotas.limit_of("big") == 100
        assert quotas.limit_of("free") is None
        assert quotas.usage()["free"] == {"used": 10_000, "limit": None}

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            TenantQuotas(default_limit=-1)
        with pytest.raises(InvalidParameterError):
            TenantQuotas(limits={"a": -2})
        with pytest.raises(InvalidParameterError):
            TenantQuotas().charge("a", -1)


class TestBatchCoalescer:
    def test_lone_request_executes_immediately(self):
        coalescer = BatchCoalescer()
        result = coalescer.submit(
            "key", "a", threading.RLock(), lambda batch: [p.upper() for p in batch]
        )
        assert result == "A"
        assert coalescer.stats() == {
            "batches_executed": 1,
            "requests_seen": 1,
            "requests_merged": 0,
            "largest_merge": 1,
        }

    def _run_contended(self, runner, names=("a", "b", "c")):
        """Submit *names* concurrently while the engine lock is held."""
        coalescer = BatchCoalescer()
        lock = threading.RLock()
        outcomes: dict[str, object] = {}

        def submit(name):
            try:
                outcomes[name] = coalescer.submit("key", name, lock, runner)
            except Exception as error:  # noqa: BLE001 - recorded for assertions
                outcomes[name] = error

        lock.acquire()  # simulate a busy engine: the leader must wait
        threads = [threading.Thread(target=submit, args=(n,)) for n in names]
        for thread in threads:
            thread.start()
        while coalescer.stats()["requests_seen"] < len(names):
            time.sleep(0.001)
        lock.release()
        for thread in threads:
            thread.join(timeout=5)
        return coalescer, outcomes

    def test_contended_requests_merge_into_one_call(self):
        calls = []

        def runner(batch):
            calls.append(list(batch))
            return [payload.upper() for payload in batch]

        coalescer, outcomes = self._run_contended(runner)
        assert outcomes == {"a": "A", "b": "B", "c": "C"}
        assert len(calls) == 1 and sorted(calls[0]) == ["a", "b", "c"]
        stats = coalescer.stats()
        assert stats["batches_executed"] == 1
        assert stats["requests_merged"] == 2
        assert stats["largest_merge"] == 3

    def test_runner_failure_reaches_every_merged_request(self):
        def runner(batch):
            raise ValueError("engine exploded")

        _, outcomes = self._run_contended(runner)
        assert all(isinstance(o, ValueError) for o in outcomes.values())

    def test_runner_length_mismatch_is_reported(self):
        _, outcomes = self._run_contended(lambda batch: ["only-one"])
        assert all(isinstance(o, RuntimeError) for o in outcomes.values())


class TestServerEndToEnd:
    def test_run_matches_direct_engine(self, client):
        vector = _vectors(1)[0]
        served = client.run(SPEC, vector, seed=5)
        direct = Engine(SPEC, "condition-kset", RunConfig(seed=5)).run(vector)
        assert _canon([served]) == _canon([direct])

    def test_batch_is_byte_identical_on_both_backends(self, client):
        vectors = _vectors(6)
        for backend in ("sync", "async"):
            served = client.run_batch(SPEC, vectors, seed=3, backend=backend)
            direct = Engine(
                SPEC, "condition-kset", RunConfig(backend=backend, seed=3)
            ).run_batch(vectors)
            assert _canon(served) == _canon(direct), backend

    def test_second_batch_is_served_warm(self, server, client):
        vectors = _vectors(3)
        client.run_batch(SPEC, vectors, seed=0)
        before = client.status()["cache"]
        client.run_batch(SPEC, vectors, seed=1)
        after = client.status()["cache"]
        assert before["misses"] == 1
        assert after["misses"] == 1  # no new engine was built
        assert after["hits"] >= before["hits"] + 1
        assert after["size"] == 1

    def test_streaming_batch_matches_buffered(self, client):
        vectors = _vectors(5)
        buffered = client.run_batch(SPEC, vectors, seed=2)
        streamed = list(client.iter_batch(SPEC, vectors, seed=2))
        assert _canon(streamed) == _canon(buffered)

    def test_sweep_matches_direct_engine(self, client):
        grid = {"d": [1, 2], "k": [2]}
        served = client.sweep(SPEC, grid, 2, seed=4)
        direct = Engine(SPEC, "condition-kset", RunConfig(seed=4)).sweep(grid, 2)
        assert [cell["overrides"] for cell in served] == [
            dict(cell.overrides) for cell in direct
        ]
        assert [
            [json.dumps(r, sort_keys=True) for r in cell["results"]]
            for cell in served
        ] == [_canon(cell.results) for cell in direct]

    def test_check_runs_the_model_checker(self, client):
        verdict = client.check(CHECK_SPEC)
        direct = Engine(CHECK_SPEC, "condition-kset").check()
        assert verdict["passed"] is True
        assert verdict["report"] == json.loads(json.dumps(direct.to_record()))
        assert "executions" in verdict["render"]

    def test_async_check_over_the_wire(self, client):
        verdict = client.check(CHECK_SPEC, backend="async", depth=2)
        assert verdict["passed"] is True
        assert verdict["backend"] == "async"

    def test_status_reports_the_whole_surface(self, client):
        client.run(SPEC, _vectors(1)[0])
        status = client.status()
        assert status["cache"]["size"] == 1
        assert status["cache"]["engines"][0]["spec"] == SPEC.describe()
        assert status["requests"]["by_endpoint"]["/run"] == 1
        assert status["runs_served"] == 1
        assert status["admission"]["in_flight"] == 0
        assert status["tenants"] == {"default": {"used": 1, "limit": None}}
        assert status["coalescer"]["requests_seen"] == 0
        assert status["uptime_seconds"] >= 0

    def test_eviction_under_a_tiny_bound(self):
        with ReproServer(port=0, cache_capacity=1) as server:
            client = ServeClient(*server.address)
            vectors = _vectors(2)
            first = client.run_batch(SPEC, vectors, seed=0)
            client.run_batch(OTHER_SPEC, _vectors(2, OTHER_SPEC), seed=0)
            again = client.run_batch(SPEC, vectors, seed=0)  # rebuilt after eviction
            assert _canon(again) == _canon(first)
            stats = client.status()["cache"]
            assert stats["capacity"] == 1 and stats["size"] == 1
            assert stats["evictions"] >= 2

    def test_quota_rejection_is_a_quota_error(self):
        with ReproServer(port=0, default_quota=4) as server:
            client = ServeClient(*server.address)
            client.run_batch(SPEC, _vectors(3), seed=0)
            with pytest.raises(QuotaExceededError, match="quota"):
                client.run_batch(SPEC, _vectors(3), seed=0)
            client.run(SPEC, _vectors(1)[0])  # 1 run still fits the budget
            status = client.status()
            assert status["requests"]["rejected_quota"] == 1
            assert status["tenants"]["default"]["used"] == 4

    def test_tenant_quota_overrides(self):
        with ReproServer(
            port=0, default_quota=1, tenant_quotas={"gold": 100}
        ) as server:
            gold = ServeClient(*server.address, tenant="gold")
            broke = ServeClient(*server.address, tenant="broke")
            gold.run_batch(SPEC, _vectors(5), seed=0)
            with pytest.raises(QuotaExceededError):
                broke.run_batch(SPEC, _vectors(5), seed=0)

    def test_admission_rejection_when_saturated(self):
        with ReproServer(port=0, max_inflight=1, max_queue=0) as server:
            client = ServeClient(*server.address)
            server.admission.acquire()  # occupy the only execution slot
            try:
                with pytest.raises(AdmissionError, match="capacity"):
                    client.run(SPEC, _vectors(1)[0])
                # Monitoring stays reachable while execution is saturated.
                assert client.status()["admission"]["rejected"] == 1
            finally:
                server.admission.release()
            assert client.run(SPEC, _vectors(1)[0]).terminated

    def test_concurrent_batches_coalesce_into_one_engine_call(self, server):
        vectors = _vectors(2)
        client = ServeClient(*server.address)
        client.run_batch(SPEC, vectors, seed=0)  # build the engine (miss)
        entry = server.cache.get(SPEC, "condition-kset", RunConfig())
        outcomes: dict[int, list] = {}

        def request(seed):
            outcomes[seed] = ServeClient(*server.address).run_batch(
                SPEC, vectors, seed=seed
            )

        seen_before = server.coalescer.stats()["requests_seen"]
        with entry.lock:  # hold the engine: concurrent requests must pool
            threads = [
                threading.Thread(target=request, args=(seed,)) for seed in (10, 20, 30)
            ]
            for thread in threads:
                thread.start()
            while server.coalescer.stats()["requests_seen"] < seen_before + 3:
                time.sleep(0.001)
        for thread in threads:
            thread.join(timeout=10)

        stats = server.coalescer.stats()
        assert stats["largest_merge"] >= 2  # at least two rode together
        # Merged or not, every response is byte-identical to a direct batch.
        for seed, results in outcomes.items():
            direct = Engine(
                SPEC, "condition-kset", RunConfig(seed=seed)
            ).run_batch(vectors)
            assert _canon(results) == _canon(direct)

    def test_tenant_stores_are_namespaced_files(self, tmp_path):
        with ReproServer(port=0, store_dir=str(tmp_path)) as server:
            alpha = ServeClient(*server.address, tenant="alpha")
            beta = ServeClient(*server.address, tenant="beta")
            alpha.run_batch(SPEC, _vectors(2), seed=0)
            beta.run(SPEC, _vectors(1)[0])
        alpha_store = ResultStore.for_tenant(tmp_path, "alpha")
        beta_store = ResultStore.for_tenant(tmp_path, "beta")
        assert len(alpha_store.load_results()) == 2
        assert len(beta_store.load_results()) == 1
        for record in alpha_store.iter_records():
            assert record["tenant"] == "alpha"

    def test_bad_requests_are_400s_not_crashes(self, client):
        with pytest.raises(ServeError, match="spec"):
            client.run({"n": 4}, [1, 2, 3, 4])  # t is missing
        with pytest.raises(ServeError, match="vector"):
            client._call("POST", "/run", {"spec": {"n": 4, "t": 2}})
        with pytest.raises(ServeError, match="unknown endpoint"):
            client._call("POST", "/nope", {})
        with pytest.raises(ServeError, match="adversary"):
            client.run(SPEC, _vectors(1)[0], adversary="round-robin")  # sync

    def test_shutdown_endpoint_stops_the_server(self):
        server = ReproServer(port=0)
        server.start()
        client = ServeClient(*server.address)
        client.shutdown()
        server._thread.join(timeout=5)
        assert not server._thread.is_alive()
        server.close()

    def test_unreachable_server_raises_serve_error(self):
        client = ServeClient("127.0.0.1", 9, timeout=0.5)  # discard port
        with pytest.raises(ServeError, match="cannot reach"):
            client.status()


class TestServeCLI:
    def test_parser_accepts_serve_options(self):
        arguments = build_parser().parse_args(
            [
                "serve", "--port", "0", "--cache-capacity", "2",
                "--max-inflight", "1", "--max-queue", "0",
                "--quota", "100", "--tenant-quota", "ci=50",
                "--store-dir", "stores",
            ]
        )
        assert arguments.command == "serve"
        assert arguments.cache_capacity == 2
        assert arguments.tenant_quota == ["ci=50"]

    def test_malformed_tenant_quota_is_rejected(self, capsys):
        from repro.cli import main

        status = main(["serve", "--port", "0", "--tenant-quota", "nonsense"])
        assert status == 2
        assert "TENANT=RUNS" in capsys.readouterr().err
