"""End-to-end integration tests crossing every layer of the library.

These tests follow a downstream user's path: build a condition, pick an input
vector, run the synchronous algorithm under several failure regimes, check the
agreement properties, and compare against the baseline — exactly what the
examples and benchmarks do, but with assertions.
"""

from __future__ import annotations

from random import Random

import pytest

import repro
from repro import (
    ConditionBasedKSetAgreement,
    FloodMinKSetAgreement,
    InputVector,
    MaxLegalCondition,
    SynchronousSystem,
)
from repro.algorithms import ConditionBasedConsensus, run_async_condition_set_agreement
from repro.analysis import assert_execution_correct, check_execution
from repro.core import SynchronousClass
from repro.sync import crashes_in_round_one, random_schedule, staggered_schedule
from repro.workloads import (
    degraded_path_scenario,
    fast_path_scenario,
    outside_condition_scenario,
    vector_in_max_condition,
)


class TestPackageSurface:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        assert "MaxLegalCondition" in repro.__all__
        # Lazy exports resolve to the right classes.
        assert repro.ConditionBasedKSetAgreement is ConditionBasedKSetAgreement
        assert repro.SynchronousSystem is SynchronousSystem
        with pytest.raises(AttributeError):
            repro.DoesNotExist

    def test_docstring_quickstart_runs(self):
        n, t, d, ell, k = 8, 4, 2, 1, 2
        condition = MaxLegalCondition(n=n, domain=10, x=t - d, ell=ell)
        vector = InputVector([7, 7, 7, 3, 2, 7, 1, 5])
        assert condition.contains(vector)
        algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        system = SynchronousSystem(n=n, t=t, algorithm=algorithm)
        result = system.run(vector)
        assert sorted(set(result.decisions.values())) == [7]


class TestScenarioMatrix:
    """The three regimes of Section 6.1 across several parameterisations."""

    @pytest.mark.parametrize(
        "n,m,t,d,ell,k",
        [
            (8, 10, 4, 2, 1, 2),
            (9, 12, 6, 3, 2, 3),
            (10, 12, 6, 4, 2, 2),
            (7, 10, 4, 1, 1, 2),
        ],
    )
    def test_all_three_regimes(self, n, m, t, d, ell, k):
        for builder in (fast_path_scenario, degraded_path_scenario, outside_condition_scenario):
            scenario = builder(n=n, m=m, t=t, d=d, ell=ell, k=k)
            algorithm = ConditionBasedKSetAgreement(
                condition=scenario.condition, t=t, d=d, k=k
            )
            result = SynchronousSystem(n, t, algorithm).run(
                scenario.input_vector, scenario.schedule
            )
            assert_execution_correct(
                result,
                scenario.input_vector,
                k=k,
                round_bound=scenario.predicted_round_bound,
            )

    def test_class_metadata_matches_algorithm(self):
        t, d, ell, k = 6, 3, 2, 3
        condition = MaxLegalCondition(9, 12, t - d, ell)
        algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        synchronous_class = SynchronousClass(t=t, d=d, ell=ell)
        assert synchronous_class.supports_k(k)
        assert algorithm.condition_decision_round() == synchronous_class.rounds_in_condition(k)
        assert algorithm.last_round() == synchronous_class.rounds_outside_condition(k)


class TestCrossAlgorithmComparison:
    def test_condition_based_never_slower_than_baseline_in_condition(self):
        rng = Random(3)
        n, m, t, k = 10, 12, 6, 2
        for d in (2, 3, 4):
            condition = MaxLegalCondition(n, m, t - d, 1)
            algorithm = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
            baseline = FloodMinKSetAgreement(t=t, k=k)
            vector = vector_in_max_condition(n, m, t - d, 1, rng)
            for schedule in (
                staggered_schedule(n, t, per_round=k),
                crashes_in_round_one(n, t, delivered_prefix=0),
                random_schedule(n, t, t // 2, max_round=3, rng=rng),
            ):
                cond_result = SynchronousSystem(n, t, algorithm).run(vector, schedule)
                base_result = SynchronousSystem(n, t, baseline).run(vector, schedule)
                assert_execution_correct(cond_result, vector, k=k)
                assert_execution_correct(base_result, vector, k=k)
                assert (
                    cond_result.max_decision_round_of_correct()
                    <= base_result.max_decision_round_of_correct()
                )

    def test_consensus_and_kset_consistency(self):
        """The k=1 wrapper and the generic algorithm agree on the same inputs."""
        rng = Random(11)
        n, m, t, d = 8, 10, 4, 2
        condition = MaxLegalCondition(n, m, t - d, 1)
        consensus = ConditionBasedConsensus(condition=condition, t=t, d=d)
        generic = ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=1)
        vector = vector_in_max_condition(n, m, t - d, 1, rng)
        schedule = staggered_schedule(n, t)
        first = SynchronousSystem(n, t, consensus).run(vector, schedule)
        second = SynchronousSystem(n, t, generic).run(vector, schedule)
        assert first.decisions == second.decisions
        assert first.decision_rounds == second.decision_rounds


class TestSyncAsyncConsistency:
    def test_same_condition_serves_both_models(self):
        """An (x, l)-legal condition drives both the synchronous and async algorithms."""
        n, m, x, ell = 7, 9, 3, 2
        t, d, k = 5, 2, 2
        assert x == t - d
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 5)

        sync_result = SynchronousSystem(
            n, t, ConditionBasedKSetAgreement(condition=condition, t=t, d=d, k=k)
        ).run(vector, crashes_in_round_one(n, x, delivered_prefix=2))
        assert_execution_correct(sync_result, vector, k=k)

        async_result = run_async_condition_set_agreement(
            condition, x, vector, crashed=tuple(range(x)), seed=7
        )
        report = check_execution(async_result, vector, ell)
        assert report, report.failures

        # Both decide values encoded by the condition for this vector.
        decoded = condition.decode(vector.restrict(range(n)))
        assert sync_result.decided_values() <= decoded | set(vector.entries)
        assert async_result.decided_values() <= decoded
