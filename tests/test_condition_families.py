"""Tests for the condition-family registry and the new condition oracles.

The oracle correctness tests are brute-force cross-checks: on small systems
every family's ``contains`` / ``is_compatible`` / ``decode`` answer is
compared against an exhaustive Definition 4 computation over the enumerated
member set — the analytic fast paths must agree with the paper's definitions
bit for bit.
"""

from __future__ import annotations

from itertools import combinations, product

import pytest

from repro.api import (
    CONDITIONS,
    AgreementSpec,
    Engine,
    RunConfig,
    available_conditions,
    register_condition,
    resolve_condition,
)
from repro.core import (
    AllVectorsOracle,
    FrequencyGapCondition,
    HammingBallCondition,
    InputVector,
    MaxLegalCondition,
    MinLegalCondition,
    View,
    BOTTOM,
)
from repro.analysis import check_execution
from repro.exceptions import (
    DecodingError,
    InvalidParameterError,
    RegistryError,
)
from repro.workloads import vector_in_condition, vector_outside_condition


def all_vectors(n, m):
    return [InputVector(entries) for entries in product(range(1, m + 1), repeat=n)]


def all_views(n, m, max_bottoms):
    seen = set()
    for vector in all_vectors(n, m):
        for bottoms in range(0, max_bottoms + 1):
            for positions in combinations(range(n), bottoms):
                seen.add(
                    tuple(
                        BOTTOM if index in positions else vector[index]
                        for index in range(n)
                    )
                )
    return [View(entries) for entries in seen]


def brute_decode(members, recognize, view):
    """Definition 4 computed the slow, obviously-correct way."""
    intersection = None
    found = False
    for vector in members:
        if view.contained_in(vector):
            found = True
            decoded = recognize(vector)
            intersection = decoded if intersection is None else intersection & decoded
    if not found:
        return None
    return intersection & view.val()


class TestRegistry:
    def test_expected_families_registered(self):
        for name in (
            "max-legal",
            "min-legal",
            "frequency-gap",
            "hamming-ball",
            "all-vectors",
            "explicit",
        ):
            assert name in available_conditions()

    def test_unknown_family_error_lists_known_names(self):
        with pytest.raises(RegistryError) as excinfo:
            CONDITIONS.get("paxos")
        message = str(excinfo.value)
        assert "paxos" in message and "max-legal" in message

    def test_unknown_family_rejected_at_spec_construction(self):
        with pytest.raises(RegistryError):
            AgreementSpec(n=4, t=1, condition="not-a-family")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            register_condition("max-legal", "shadowing attempt")(lambda spec, params: None)

    def test_unknown_parameter_rejected(self):
        spec = AgreementSpec(
            n=4, t=1, condition="hamming-ball", condition_params={"radios": 2}
        )
        with pytest.raises(InvalidParameterError) as excinfo:
            spec.condition_oracle()
        assert "radios" in str(excinfo.value)
        assert "radius" in str(excinfo.value)  # the accepted names are listed

    def test_custom_family_runs_end_to_end(self):
        name = "test-two-values"
        if name not in CONDITIONS:

            @register_condition(name, "vectors with exactly two distinct values")
            def _build(spec, params):
                from repro.core.generators import two_values_condition

                return two_values_condition(spec.n, spec.domain)

        spec = AgreementSpec(n=5, t=2, k=2, d=2, ell=2, domain=3, condition=name)
        engine = Engine(spec, "condition-kset")
        result = engine.run([1, 2, 1, 2, 1])
        assert result.in_condition is True
        assert result.terminated
        assert result.condition == "two_values(n=5,m=3)"


class TestSpecIntegration:
    def test_default_family_is_byte_identical_to_sugar(self):
        plain = AgreementSpec(n=8, t=4, k=2, d=2, ell=1, domain=10)
        named = AgreementSpec(n=8, t=4, k=2, d=2, ell=1, domain=10, condition="max-legal")
        assert plain == named and hash(plain) == hash(named)
        assert plain.condition_oracle() is named.condition_oracle()
        vector = [7, 7, 7, 3, 2, 7, 1, 7]
        first = Engine(plain, "condition-kset").run(vector)
        second = Engine(named, "condition-kset").run(vector)
        assert first.decisions == second.decisions
        assert first.decision_times == second.decision_times
        assert first.duration == second.duration

    def test_max_legal_oracle_shared_across_t_variants(self):
        # Same derived (n, m, x, l): one oracle object, as in the seed API.
        a = AgreementSpec(n=6, t=3, d=1, domain=5)  # x = 2
        b = AgreementSpec(n=6, t=4, d=2, domain=5)  # x = 2
        assert a.condition_oracle() is b.condition_oracle()

    def test_condition_params_frozen_and_hashable(self):
        spec = AgreementSpec(
            n=4,
            t=1,
            condition="hamming-ball",
            condition_params={"radius": 1, "center": [2, 2, 2, 2]},
        )
        assert isinstance(spec.condition_params, tuple)
        hash(spec)  # must not raise
        assert resolve_condition(spec) is spec.condition_oracle()

    def test_resolution_memoized_per_spec(self):
        spec = AgreementSpec(n=5, t=2, d=1, domain=4, condition="min-legal")
        twin = AgreementSpec(n=5, t=2, d=1, domain=4, condition="min-legal")
        assert spec.condition_oracle() is twin.condition_oracle()

    def test_describe_names_non_default_family(self):
        spec = AgreementSpec(n=5, t=2, condition="all-vectors")
        assert "cond=all-vectors" in spec.describe()
        assert "cond=" not in AgreementSpec(n=5, t=2).describe()

    def test_run_result_carries_condition_metadata(self):
        spec = AgreementSpec(n=5, t=2, d=1, domain=4, condition="min-legal")
        result = Engine(spec, "condition-kset").run([1, 1, 1, 2, 3])
        assert result.condition == "min_1-legal(x=1, n=5, m=4)"
        baseline = Engine(spec, "floodmin").run([1, 1, 1, 2, 3])
        assert baseline.condition is None

    def test_frequency_gap_requires_ell_one(self):
        spec = AgreementSpec(n=5, t=2, d=1, ell=2, domain=4, condition="frequency-gap")
        with pytest.raises(InvalidParameterError):
            spec.condition_oracle()

    def test_explicit_family_resolves_vectors(self):
        spec = AgreementSpec(
            n=3,
            t=1,
            d=1,
            domain=3,
            condition="explicit",
            condition_params={"vectors": ((1, 1, 2), (1, 1, 3))},
        )
        oracle = spec.condition_oracle()
        assert oracle.contains(InputVector([1, 1, 2]))
        assert not oracle.contains(InputVector([2, 2, 2]))


class TestOracleCrossChecks:
    """Every analytic family answer equals the brute-force Definition 4 answer."""

    N, M = 4, 3

    def _check(self, oracle, recognize, max_bottoms=2):
        members = [v for v in all_vectors(self.N, self.M) if oracle.contains(v)]
        assert set(oracle.enumerate_vectors()) == set(members)
        for view in all_views(self.N, self.M, max_bottoms):
            compatible = any(view.contained_in(member) for member in members)
            assert oracle.is_compatible(view) == compatible, view
            if compatible:
                assert oracle.decode(view) == brute_decode(members, recognize, view), view
            else:
                with pytest.raises(DecodingError):
                    oracle.decode(view)

    def test_min_legal_ell_1(self):
        oracle = MinLegalCondition(self.N, self.M, x=1, ell=1)
        self._check(oracle, lambda v: frozenset(v.smallest_values(1)))

    def test_min_legal_ell_2(self):
        oracle = MinLegalCondition(self.N, self.M, x=2, ell=2)
        self._check(oracle, lambda v: frozenset(v.smallest_values(2)))

    def test_min_legal_size_matches_max_by_symmetry(self):
        minimal = MinLegalCondition(5, 4, x=2, ell=2)
        maximal = MaxLegalCondition(5, 4, x=2, ell=2)
        assert minimal.size() == maximal.size()
        assert len(list(minimal.enumerate_vectors())) == minimal.size()

    def test_frequency_gap(self):
        oracle = FrequencyGapCondition(self.N, self.M, gap=1)
        self._check(oracle, lambda v: frozenset({oracle.winner(v)}))

    def test_frequency_gap_zero(self):
        oracle = FrequencyGapCondition(self.N, self.M, gap=0)
        self._check(oracle, lambda v: frozenset({oracle.winner(v)}))

    def test_hamming_ball_unanimous_centre(self):
        oracle = HammingBallCondition(self.N, self.M, [3, 3, 3, 3], radius=2, ell=1)
        self._check(oracle, oracle._recognize)

    def test_hamming_ball_mixed_centre_ell_2(self):
        oracle = HammingBallCondition(self.N, self.M, [1, 2, 3, 2], radius=1, ell=2)
        self._check(oracle, oracle._recognize)

    def test_hamming_ball_size_closed_form(self):
        oracle = HammingBallCondition(5, 4, [2, 2, 2, 2, 2], radius=2, ell=1)
        assert oracle.size() == len(list(oracle.enumerate_vectors()))

    def test_all_vectors(self):
        oracle = AllVectorsOracle(self.N, self.M, ell=2)
        self._check(oracle, lambda v: frozenset(v.greatest_values(2)))

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            FrequencyGapCondition(4, 3, gap=4)  # unreachable gap
        with pytest.raises(InvalidParameterError):
            HammingBallCondition(4, 3, [1, 1, 1, 1], radius=4)  # trivial ball
        from repro.exceptions import InvalidVectorError

        with pytest.raises(InvalidVectorError):
            HammingBallCondition(4, 3, [1, 1, 1], radius=1)  # centre size
        with pytest.raises(InvalidVectorError):
            HammingBallCondition(4, 3, [1, 1, 1, 9], radius=1)  # centre domain


class TestFamiliesEndToEnd:
    CASES = [
        ("max-legal", 1, {}),
        ("min-legal", 1, {}),
        ("frequency-gap", 1, {"gap": 1}),
        ("hamming-ball", 1, {"radius": 1}),
        ("all-vectors", 2, {}),
    ]

    @pytest.mark.parametrize("family,d,params", CASES)
    def test_sync_and_async_backends(self, family, d, params):
        spec = AgreementSpec(
            n=6, t=2, k=2, d=d, ell=1, domain=6,
            condition=family, condition_params=params,
        )
        engine = Engine(spec, "condition-kset")
        vector = vector_in_condition(engine.condition, spec.n, spec.domain, 7)
        sync_result = engine.run(vector)
        assert sync_result.terminated
        assert sync_result.in_condition is True
        assert bool(check_execution(sync_result, vector, spec.k))
        assert sync_result.max_decision_round_of_correct() <= 2  # fast path
        async_result = engine.run(vector, backend="async", seed=3)
        assert async_result.terminated
        assert bool(check_execution(async_result, vector, spec.ell))

    def test_sweep_across_families(self):
        spec = AgreementSpec(n=6, t=2, k=2, d=1, ell=1, domain=6)
        cells = Engine(spec, "condition-kset").sweep(
            {"condition": ("max-legal", "min-legal", "hamming-ball")}, runs_per_cell=2
        )
        assert len(cells) == 3
        for cell in cells:
            assert cell.error is None
            assert cell.in_condition_count() == cell.runs
            assert cell.all_terminated()

    def test_sweep_resets_foreign_condition_params(self):
        # The base spec carries hamming-ball params; sweeping onto other
        # families must not hand them a 'radius' they would reject.
        spec = AgreementSpec(
            n=6, t=2, k=2, d=1, ell=1, domain=6,
            condition="hamming-ball", condition_params={"radius": 2},
        )
        cells = Engine(spec, "condition-kset").sweep(
            {"condition": ("max-legal", "min-legal", "frequency-gap", "hamming-ball")},
            runs_per_cell=1,
        )
        assert [cell.error for cell in cells] == [None] * 4
        # The cell that keeps the base family also keeps the base params.
        ball_cell = next(c for c in cells if c.overrides["condition"] == "hamming-ball")
        assert dict(ball_cell.spec.condition_params) == {"radius": 2}

    def test_engine_condition_proxy_forwards_enumeration(self):
        spec = AgreementSpec(
            n=6, t=2, k=2, d=1, ell=1, domain=10,
            condition="explicit",
            condition_params={"vectors": ((1, 2, 1, 2, 1, 2), (2, 1, 2, 1, 2, 1))},
        )
        engine = Engine(spec, "condition-kset")
        # The memoizing proxy must not hide the sparse family's enumeration:
        # random probes and unanimous witnesses all miss these two vectors.
        vector = vector_in_condition(engine.condition, spec.n, spec.domain, 0)
        assert engine.condition.contains(vector)
        assert engine.run(vector).in_condition is True

    def test_generic_samplers(self):
        spec = AgreementSpec(n=6, t=2, k=2, d=1, ell=1, domain=6, condition="frequency-gap")
        oracle = spec.condition_oracle()
        inside = vector_in_condition(oracle, 6, 6, 11)
        assert oracle.contains(inside)
        outside = vector_outside_condition(oracle, 6, 6, 11)
        assert not oracle.contains(outside)
        trivial = AgreementSpec(n=4, t=2, condition="all-vectors").condition_oracle()
        with pytest.raises(InvalidParameterError):
            vector_outside_condition(trivial, 4, 10, 0)
