"""Unit tests for recognizing functions and their extension to views (Definitions 2–4)."""

from __future__ import annotations

import pytest

from repro.core.recognizing import (
    FunctionRecognizer,
    MappingRecognizer,
    MaxValues,
    MinValues,
    extend_to_view,
)
from repro.core.values import BOTTOM
from repro.core.vectors import InputVector, View
from repro.exceptions import DecodingError, InvalidParameterError, InvalidVectorError


class TestMaxMinValues:
    def test_max_values_basic(self):
        vector = InputVector([4, 1, 4, 9, 2])
        assert MaxValues(1).decode_vector(vector) == frozenset({9})
        assert MaxValues(2).decode_vector(vector) == frozenset({9, 4})
        assert MaxValues(10).decode_vector(vector) == frozenset({9, 4, 2, 1})

    def test_min_values_basic(self):
        vector = InputVector([4, 1, 4, 9, 2])
        assert MinValues(1).decode_vector(vector) == frozenset({1})
        assert MinValues(2).decode_vector(vector) == frozenset({1, 2})

    def test_degree_validation(self):
        with pytest.raises(InvalidParameterError):
            MaxValues(0)
        with pytest.raises(InvalidParameterError):
            MinValues(-1)

    def test_callable_interface(self):
        vector = InputVector([1, 2])
        assert MaxValues(1)(vector) == frozenset({2})

    def test_validity_helper(self):
        vector = InputVector([5, 5, 2])
        assert MaxValues(1).satisfies_validity(vector)
        assert MaxValues(2).satisfies_validity(vector)
        # A constant function missing values fails validity on rich vectors.
        bad = FunctionRecognizer(2, lambda v: [max(v.val())])
        assert not bad.satisfies_validity(vector)

    def test_density_helper(self):
        vector = InputVector([5, 5, 2, 1])
        assert MaxValues(1).satisfies_density(vector, x=1)
        assert not MaxValues(1).satisfies_density(vector, x=2)
        assert MaxValues(2).satisfies_density(vector, x=2)

    def test_repr(self):
        assert "ell=2" in repr(MaxValues(2))


class TestMappingRecognizer:
    def test_lookup(self):
        vector = InputVector(["a", "a", "b"])
        recognizer = MappingRecognizer(1, {vector: {"a"}})
        assert recognizer.decode_vector(vector) == frozenset({"a"})
        assert recognizer.domain() == frozenset({vector})
        assert recognizer.table[vector] == frozenset({"a"})

    def test_unknown_vector(self):
        recognizer = MappingRecognizer(1, {InputVector([1, 1]): {1}})
        with pytest.raises(DecodingError):
            recognizer.decode_vector(InputVector([2, 2]))

    def test_rejects_oversized_sets(self):
        with pytest.raises(InvalidParameterError):
            MappingRecognizer(1, {InputVector([1, 2]): {1, 2}})

    def test_rejects_non_vector_keys(self):
        with pytest.raises(InvalidVectorError):
            MappingRecognizer(1, {(1, 2): {1}})


class TestFunctionRecognizer:
    def test_custom_function(self):
        recognizer = FunctionRecognizer(1, lambda v: [min(v.val())], name="min")
        assert recognizer.decode_vector(InputVector([3, 1, 2])) == frozenset({1})
        assert "min" in repr(recognizer)

    def test_oversized_result_rejected(self):
        recognizer = FunctionRecognizer(1, lambda v: list(v.val()))
        with pytest.raises(DecodingError):
            recognizer.decode_vector(InputVector([1, 2, 3]))


class TestExtendToView:
    def test_extension_intersects_over_containing_vectors(self):
        i1 = InputVector(["a", "a", "c", "d"])
        i2 = InputVector(["a", "a", "d", "d"])
        recognizer = MappingRecognizer(1, {i1: {"a"}, i2: {"a"}})
        view = View(["a", "a", BOTTOM, "d"])
        assert extend_to_view(recognizer, [i1, i2], view) == frozenset({"a"})

    def test_extension_respects_val_of_view(self):
        # The decoded value must also appear in the view itself.
        i1 = InputVector(["a", "b", "b"])
        recognizer = MappingRecognizer(1, {i1: {"b"}})
        view = View(["a", BOTTOM, BOTTOM])
        assert extend_to_view(recognizer, [i1], view) == frozenset()

    def test_extension_undefined_when_no_containing_vector(self):
        i1 = InputVector([1, 1, 2])
        recognizer = MappingRecognizer(1, {i1: {1}})
        with pytest.raises(DecodingError):
            extend_to_view(recognizer, [i1], View([9, BOTTOM, BOTTOM]))

    def test_extension_checks_bottom_budget(self):
        i1 = InputVector([1, 1, 2])
        recognizer = MappingRecognizer(1, {i1: {1}})
        with pytest.raises(DecodingError):
            extend_to_view(recognizer, [i1], View([BOTTOM, BOTTOM, 2]), x=1)

    def test_theorem1_non_empty_on_table1(self, table1):
        """Theorem 1: with ≤ x bottoms the decoded set is non-empty and ≤ l."""
        condition, recognizer = table1
        x = 1
        for vector in condition.vectors:
            for hidden in range(len(vector)):
                view = vector.restrict(set(range(len(vector))) - {hidden})
                decoded = extend_to_view(recognizer, condition.vectors, view, x=x)
                assert 1 <= len(decoded) <= 1
                assert decoded <= view.val() or decoded <= vector.val()
