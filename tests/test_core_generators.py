"""Unit tests for the condition generators (paper examples and counterexample families)."""

from __future__ import annotations

import pytest

from repro.core.generators import (
    all_vectors_condition,
    enumerate_all_vectors,
    max_legal_condition,
    table1_condition,
    theorem15_condition,
    theorem5_condition,
    theorem7_condition,
    two_values_condition,
)
from repro.core.legality import check_legality, is_legal
from repro.core.recognizing import MaxValues
from repro.core.vectors import InputVector
from repro.exceptions import InvalidParameterError


class TestEnumeration:
    def test_enumerate_all_vectors_count(self):
        assert len(list(enumerate_all_vectors(3, 2))) == 8
        assert len(list(enumerate_all_vectors(2, 4))) == 16

    def test_enumerate_accepts_explicit_domains(self):
        vectors = list(enumerate_all_vectors(2, ["a", "b"]))
        assert InputVector(["a", "b"]) in vectors
        assert len(vectors) == 4

    def test_empty_domain_rejected(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_all_vectors(2, []))


class TestTable1:
    def test_contents(self):
        condition, recognizer = table1_condition()
        assert len(condition) == 4
        assert condition.n == 4
        assert recognizer.decode_vector(InputVector(["a", "a", "c", "d"])) == {"a"}
        assert recognizer.decode_vector(InputVector(["a", "b", "d", "d"])) == {"d"}

    def test_pairwise_distances_are_two(self):
        from repro.core.vectors import hamming_distance

        condition, _ = table1_condition()
        vectors = sorted(condition.vectors, key=lambda v: tuple(map(str, v.entries)))
        for i, first in enumerate(vectors):
            for second in vectors[i + 1 :]:
                assert hamming_distance(first, second) == 2

    def test_theorem14(self):
        condition, recognizer = table1_condition()
        assert check_legality(condition, recognizer, x=1, ell=1)
        assert not is_legal(condition, 2, 2)


class TestTheorem5Family:
    def test_legal_at_x_not_at_x_plus_one(self):
        condition = theorem5_condition(4, 3, 2, 1)
        assert check_legality(condition, condition.recognizer, x=2, ell=1, max_subset_size=3)
        assert not is_legal(condition, 3, 1, max_subset_size=2)

    def test_every_vector_has_tight_density(self):
        condition = theorem5_condition(4, 3, 2, 1)
        for vector in condition:
            top = condition.recognizer.decode_vector(vector)
            assert vector.occurrences_of_set(top) == 3  # exactly x + 1

    def test_empty_family_rejected(self):
        with pytest.raises(InvalidParameterError):
            theorem5_condition(2, 2, 0, 3)


class TestTheorem7Family:
    def test_legal_at_ell_plus_one_not_at_ell(self):
        condition = theorem7_condition(4, 3, 2, 1)
        assert check_legality(condition, condition.recognizer, x=2, ell=2, max_subset_size=3)
        assert not is_legal(condition, 2, 1, max_subset_size=2)

    def test_no_single_value_is_dense_enough(self):
        condition = theorem7_condition(4, 3, 2, 1)
        for vector in condition:
            assert max(vector.occurrences(v) for v in vector.val()) <= 2


class TestTheorem15Family:
    def test_structure(self):
        condition, recognizer = theorem15_condition(n=6, x=3, ell=2)
        assert len(condition) == 3  # l + 1 vectors
        head_length = 3 - 2 + 1
        vectors = sorted(condition.vectors, key=lambda v: v.entries)
        for index, vector in enumerate(vectors, start=1):
            assert set(vector.entries[:head_length]) == {index}
            assert list(vector.entries[head_length:]) == [1, 2, 3, 4]
        assert recognizer.ell == 3

    def test_legality_claims(self):
        condition, recognizer = theorem15_condition(n=6, x=3, ell=2)
        assert check_legality(condition, recognizer, x=4, ell=3)
        assert not is_legal(condition, 3, 2)

    def test_smallest_instance(self):
        condition, recognizer = theorem15_condition(n=4, x=2, ell=1)
        assert len(condition) == 2
        assert check_legality(condition, recognizer, x=3, ell=2)
        assert not is_legal(condition, 2, 1)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            theorem15_condition(n=4, x=2, ell=3)  # l > x
        with pytest.raises(InvalidParameterError):
            theorem15_condition(n=3, x=2, ell=1)  # n < x + 2
        with pytest.raises(InvalidParameterError):
            theorem15_condition(n=4, x=2, ell=0)


class TestOtherGenerators:
    def test_all_vectors_condition(self):
        condition = all_vectors_condition(3, 2, ell=2)
        assert len(condition) == 8
        assert condition.ell == 2
        assert check_legality(condition, MaxValues(2), x=1, ell=2, max_subset_size=2)

    def test_max_legal_condition_factory(self):
        condition = max_legal_condition(4, 3, 2, 1)
        assert condition.n == 4
        assert condition.x == 2
        assert condition.ell == 1

    def test_two_values_condition(self):
        condition = two_values_condition(4, 3)
        assert all(v.distinct_value_count() == 2 for v in condition)
        assert condition.ell == 2
        # The introduction's point: it is fine for 2-set agreement whatever the
        # number of crashes — with max_2 every vector has full density.
        assert check_legality(
            condition, MaxValues(2), x=3, ell=2, max_subset_size=2
        )

    def test_two_values_condition_needs_two_values(self):
        with pytest.raises(InvalidParameterError):
            two_values_condition(3, 1)
