"""Unit tests for the workload generators (vectors and scenarios)."""

from __future__ import annotations

from random import Random

import pytest

from repro.algorithms.condition_kset import ConditionBasedKSetAgreement
from repro.analysis.properties import assert_execution_correct
from repro.core.conditions import MaxLegalCondition
from repro.exceptions import InvalidParameterError
from repro.sync.runtime import SynchronousSystem
from repro.workloads.scenarios import (
    degraded_path_scenario,
    fast_path_scenario,
    outside_condition_scenario,
)
from repro.workloads.vectors import (
    boundary_vector,
    random_vector,
    skewed_vector,
    unanimous_vector,
    vector_in_max_condition,
    vector_outside_max_condition,
)


class TestVectorGenerators:
    def test_random_vector_range(self, rng):
        vector = random_vector(10, 4, rng)
        assert len(vector) == 10
        assert all(1 <= value <= 4 for value in vector)

    def test_random_vector_deterministic_with_seed(self):
        assert random_vector(8, 5, 3) == random_vector(8, 5, 3)

    def test_skewed_vector_bias(self):
        vector = skewed_vector(200, 10, Random(1), bias=0.9)
        assert sum(1 for value in vector if value == 10) > 100
        with pytest.raises(InvalidParameterError):
            skewed_vector(5, 3, 0, bias=2.0)

    def test_unanimous_vector(self):
        vector = unanimous_vector(4, "v")
        assert set(vector.entries) == {"v"}

    @pytest.mark.parametrize("n,m,x,ell", [(8, 10, 2, 1), (9, 12, 3, 2), (6, 6, 4, 2)])
    def test_vector_in_max_condition(self, n, m, x, ell, rng):
        condition = MaxLegalCondition(n, m, x, ell)
        for _ in range(20):
            vector = vector_in_max_condition(n, m, x, ell, rng)
            assert condition.contains(vector)

    @pytest.mark.parametrize("n,m,x,ell", [(8, 10, 2, 1), (9, 12, 3, 2), (6, 8, 4, 2)])
    def test_vector_outside_max_condition(self, n, m, x, ell, rng):
        condition = MaxLegalCondition(n, m, x, ell)
        for _ in range(20):
            vector = vector_outside_max_condition(n, m, x, ell, rng)
            assert not condition.contains(vector)

    def test_outside_vector_impossible_when_ell_exceeds_x(self):
        with pytest.raises(InvalidParameterError):
            vector_outside_max_condition(6, 10, 1, 2, 0)

    def test_outside_vector_needs_enough_values(self):
        with pytest.raises(InvalidParameterError):
            vector_outside_max_condition(8, 2, 1, 1, 0)

    def test_boundary_vector(self):
        condition = MaxLegalCondition(8, 10, 3, 2)
        vector = boundary_vector(8, 10, 3, 2)
        assert condition.contains(vector)
        top = vector.greatest_values(2)
        assert vector.occurrences_of_set(top) == 4  # exactly x + 1
        with pytest.raises(InvalidParameterError):
            boundary_vector(3, 10, 3, 1)
        with pytest.raises(InvalidParameterError):
            boundary_vector(8, 1, 3, 2)


class TestScenarios:
    def run_scenario(self, scenario):
        algorithm = ConditionBasedKSetAgreement(
            condition=scenario.condition, t=scenario.t, d=scenario.d, k=scenario.k
        )
        system = SynchronousSystem(scenario.n, scenario.t, algorithm)
        result = system.run(scenario.input_vector, scenario.schedule)
        assert_execution_correct(
            result,
            scenario.input_vector,
            k=scenario.k,
            round_bound=scenario.predicted_round_bound,
        )
        return result

    def test_fast_path_scenario(self):
        scenario = fast_path_scenario(n=8, m=10, t=4, d=2, ell=1, k=2)
        assert scenario.predicted_round_bound == 2
        assert scenario.x == 2
        assert scenario.condition.contains(scenario.input_vector)
        self.run_scenario(scenario)

    def test_degraded_path_scenario(self):
        scenario = degraded_path_scenario(n=9, m=12, t=6, d=4, ell=2, k=2)
        assert scenario.schedule.round_one_crash_count() == scenario.x + 1
        self.run_scenario(scenario)

    def test_outside_condition_scenario(self):
        scenario = outside_condition_scenario(n=8, m=12, t=4, d=2, ell=1, k=2)
        assert not scenario.condition.contains(scenario.input_vector)
        assert scenario.predicted_round_bound == 3
        self.run_scenario(scenario)

    def test_scenarios_describe_themselves(self):
        scenario = fast_path_scenario(n=8, m=10, t=4, d=2, ell=1, k=2)
        assert scenario.name == "fast-path"
        assert "round" in scenario.description
