"""Tests for the exception hierarchy: every library error is a ReproError."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AdversaryError,
    AgreementViolationError,
    DecodingError,
    EmptyConditionError,
    InvalidParameterError,
    InvalidVectorError,
    LegalityError,
    ProtocolStateError,
    ReproError,
    SimulationError,
)


ALL_ERRORS = [
    AdversaryError,
    AgreementViolationError,
    DecodingError,
    EmptyConditionError,
    InvalidParameterError,
    InvalidVectorError,
    LegalityError,
    ProtocolStateError,
    SimulationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_every_error_derives_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)

    def test_errors_are_distinct(self):
        assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)

    def test_catching_the_base_class(self):
        with pytest.raises(ReproError):
            raise DecodingError("boom")

    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_message_is_preserved(self, error_type):
        with pytest.raises(error_type, match="details"):
            raise error_type("some details")


class TestLibraryRaisesItsOwnErrors:
    """A sample of operations whose failures must surface as ReproError subclasses."""

    def test_vector_errors(self):
        from repro.core.vectors import InputVector, View
        from repro.core.values import BOTTOM

        with pytest.raises(ReproError):
            View([])
        with pytest.raises(ReproError):
            InputVector([1, BOTTOM])

    def test_condition_errors(self):
        from repro.core.conditions import ExplicitCondition, MaxLegalCondition
        from repro.core.vectors import View

        with pytest.raises(ReproError):
            ExplicitCondition([])
        with pytest.raises(ReproError):
            MaxLegalCondition(3, 3, 5, 1)
        with pytest.raises(ReproError):
            MaxLegalCondition(4, 3, 2, 1).decode(View([3, 2, 1, 1]))

    def test_simulation_errors(self):
        from repro.sync.adversary import crashes_in_round_one
        from repro.sync.runtime import SynchronousSystem
        from repro.algorithms.classic_kset import FloodMinKSetAgreement

        system = SynchronousSystem(4, 1, FloodMinKSetAgreement(t=1, k=1))
        with pytest.raises(ReproError):
            system.run([1, 2, 3, 4], crashes_in_round_one(4, 2, 0))
