"""Tests for the asynchronous substrate and the Section 4 algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms.async_condition_set_agreement import (
    AsyncConditionSetAgreementProcess,
    run_async_condition_set_agreement,
)
from repro.analysis.properties import check_execution
from repro.asynchronous.process import AsynchronousProcess
from repro.asynchronous.scheduler import AsynchronousScheduler
from repro.asynchronous.shared_memory import SharedMemory
from repro.core.conditions import MaxLegalCondition
from repro.core.values import BOTTOM
from repro.core.vectors import InputVector
from repro.exceptions import (
    InvalidParameterError,
    ProtocolStateError,
    SimulationError,
)
from repro.workloads.vectors import vector_in_max_condition, vector_outside_max_condition


class TestSharedMemory:
    def test_write_and_snapshot(self):
        memory = SharedMemory(3)
        assert memory.snapshot_proposals().bottom_count() == 3
        memory.write_proposal(1, 7)
        snapshot = memory.snapshot_proposals()
        assert snapshot[1] == 7
        assert snapshot[0] is BOTTOM
        assert memory.write_count == 1
        assert memory.snapshot_count == 2

    def test_decision_board(self):
        memory = SharedMemory(3)
        memory.write_decision(0, "v")
        assert memory.snapshot_decisions()[0] == "v"
        assert memory.announced_decisions() == frozenset({"v"})

    def test_validation(self):
        memory = SharedMemory(2)
        with pytest.raises(SimulationError):
            memory.write_proposal(5, 1)
        with pytest.raises(SimulationError):
            memory.write_proposal(0, BOTTOM)
        with pytest.raises(InvalidParameterError):
            SharedMemory(0)


class CounterProcess(AsynchronousProcess):
    """Decides its proposal after three steps (used to test the scheduler)."""

    def execute_step(self) -> None:
        if self.steps_taken >= 3:
            self.decide(self.proposal)


class TestScheduler:
    def test_round_robin_runs_to_completion(self):
        memory = SharedMemory(3)
        processes = [CounterProcess(pid, 3, memory) for pid in range(3)]
        result = AsynchronousScheduler(seed=None).run(processes, [1, 2, 3])
        assert result.terminated
        assert result.decisions == {0: 1, 1: 2, 2: 3}
        assert result.decision_steps == {0: 3, 1: 3, 2: 3}

    def test_crashed_processes_never_step(self):
        memory = SharedMemory(3)
        processes = [CounterProcess(pid, 3, memory) for pid in range(3)]
        result = AsynchronousScheduler(seed=1).run(processes, [1, 2, 3], crashed=[2])
        assert 2 not in result.decisions
        assert result.terminated  # all *live* processes decided
        assert result.correct_processes == frozenset({0, 1})

    def test_budget_exhaustion_reported(self):
        class Stubborn(AsynchronousProcess):
            def execute_step(self) -> None:
                return None

        memory = SharedMemory(2)
        processes = [Stubborn(pid, 2, memory) for pid in range(2)]
        result = AsynchronousScheduler(seed=0, max_steps_per_process=5).run(
            processes, [1, 2]
        )
        assert not result.terminated
        assert result.total_steps == 10

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            AsynchronousScheduler(max_steps_per_process=0)
        memory = SharedMemory(2)
        processes = [CounterProcess(pid, 2, memory) for pid in range(2)]
        with pytest.raises(InvalidParameterError):
            AsynchronousScheduler().run(processes, [1, 2], crashed=[9])

    def test_decided_process_not_rescheduled(self):
        memory = SharedMemory(1)
        process = CounterProcess(0, 1, memory)
        process.initialize(1)
        for _ in range(3):
            process.step()
        assert process.has_decided()
        with pytest.raises(ProtocolStateError):
            process.step()


class TestAsyncConditionSetAgreement:
    def test_process_validation(self):
        memory = SharedMemory(4)
        condition = MaxLegalCondition(4, 5, 2, 1)
        with pytest.raises(InvalidParameterError):
            AsyncConditionSetAgreementProcess(0, 4, memory, condition, x=4)

    def test_in_condition_terminates_with_few_values(self):
        n, m, x, ell = 7, 9, 3, 2
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 5)
        result = run_async_condition_set_agreement(
            condition, x, vector, crashed=(0, 3, 6), seed=11
        )
        assert result.terminated
        report = check_execution(result, vector, ell)
        assert report, report.failures

    def test_wait_free_consensus_condition(self):
        # x = n − 1 (wait-free) with a degree-1 condition: a single process may run alone.
        n, m, x, ell = 5, 6, 4, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = InputVector([6, 6, 6, 6, 6])
        result = run_async_condition_set_agreement(
            condition, x, vector, crashed=(1, 2, 3, 4), seed=2
        )
        assert result.terminated
        assert result.decisions == {0: 6}

    def test_validity_and_agreement_across_interleavings(self):
        n, m, x, ell = 6, 8, 2, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 9)
        for seed in range(8):
            result = run_async_condition_set_agreement(
                condition, x, vector, crashed=(), seed=seed
            )
            assert result.terminated
            report = check_execution(result, vector, ell)
            assert report, report.failures

    def test_outside_condition_may_block_without_violating_safety(self):
        n, m, x, ell = 6, 8, 2, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_outside_max_condition(n, m, x, ell, 3)
        result = run_async_condition_set_agreement(
            condition, x, vector, crashed=(0, 1), seed=4, max_steps_per_process=30
        )
        # Safety always holds; termination is not guaranteed in this regime.
        assert result.decided_values() <= set(vector.entries)
        assert len(result.decided_values()) <= ell or not result.terminated

    def test_helping_lets_late_processes_adopt(self):
        n, m, x, ell = 6, 8, 2, 1
        condition = MaxLegalCondition(n, m, x, ell)
        vector = vector_in_max_condition(n, m, x, ell, 13)
        result = run_async_condition_set_agreement(condition, x, vector, seed=21)
        assert result.terminated
        assert len(result.decided_values()) == 1
