"""The model checker: frontier, oracles, Engine.check, mutants, differential.

The heart of the file is the acceptance triangle of the subsystem:

* the **theorem tests**: `condition-kset` decides within the paper's bounds
  on *every* schedule of every small ``(n, t, d)`` cell;
* the **parity test**: ``workers=1`` and ``workers=4`` produce byte-identical
  reports over the complete ``n=4, t=2`` schedule space, for both the
  condition-based algorithm (the Theorem 10 oracles) and the early-deciding
  baseline (the Section 8 oracle) — together all five property-oracle
  families are verified;
* the **mutant test**: a deliberately broken algorithm (FloodMin skipping
  one round) is *caught*, with a replayable counterexample that round-trips
  through the JSONL store — proof that the checker can fail.
"""

from __future__ import annotations

import json

import pytest

from repro.api import AgreementSpec, Engine, RunConfig
from repro.check import (
    MUTANT_HASTY_FLOODMIN,
    Counterexample,
    default_oracle_names,
    differential_check,
    input_frontier,
    register_mutants,
    run_check,
)
from repro.core.vectors import InputVector
from repro.exceptions import BackendError, InvalidParameterError
from repro.store import ResultStore
from repro.workloads import exhaustive_scenario


def small_spec(**overrides) -> AgreementSpec:
    parameters = dict(n=3, t=1, k=1, d=1, ell=1, domain=2)
    parameters.update(overrides)
    return AgreementSpec(**parameters)


# ----------------------------------------------------------------------
# The input frontier
# ----------------------------------------------------------------------
class TestInputFrontier:
    def test_tiny_domain_enumerates_every_vector(self):
        spec = small_spec()
        frontier = input_frontier(spec, spec.condition_oracle())
        assert len(frontier) == 2**3
        assert len({v.entries for v in frontier}) == len(frontier)

    def test_structured_frontier_is_deterministic_and_mixed(self):
        spec = AgreementSpec(n=6, t=3, k=2, d=1, ell=1, domain=8)
        oracle = spec.condition_oracle()
        first = input_frontier(spec, oracle)
        second = input_frontier(spec, oracle)
        assert first == second
        assert 0 < len(first) <= 12
        memberships = {oracle.contains(v) for v in first}
        assert memberships == {True, False}, "frontier must straddle the condition"

    def test_structured_frontier_has_boundary_and_just_outside(self):
        spec = AgreementSpec(n=6, t=3, k=2, d=1, ell=1, domain=8)
        oracle = spec.condition_oracle()
        frontier = input_frontier(spec, oracle)
        occupancies = []
        for vector in frontier:
            top = vector.greatest_values(spec.ell)
            occupancies.append(vector.occurrences_of_set(frozenset(top)))
        # Boundary: exactly x + 1 top entries; just outside: exactly x.
        assert spec.x + 1 in occupancies
        assert spec.x in occupancies

    def test_condition_free_frontier(self):
        spec = AgreementSpec(n=6, t=2, k=2, domain=9)
        frontier = input_frontier(spec, None)
        assert 0 < len(frontier) <= 12
        assert len({v.entries for v in frontier}) == len(frontier)

    def test_max_vectors_caps_the_structured_mode(self):
        spec = AgreementSpec(n=6, t=3, k=2, d=1, ell=1, domain=8)
        frontier = input_frontier(spec, spec.condition_oracle(), max_vectors=3)
        assert len(frontier) == 3
        with pytest.raises(InvalidParameterError):
            input_frontier(spec, None, max_vectors=0)


# ----------------------------------------------------------------------
# Engine.check basics
# ----------------------------------------------------------------------
class TestEngineCheck:
    def test_full_space_check_passes_and_cross_validates(self):
        engine = Engine(small_spec())
        report = engine.check()
        assert report.passed and bool(report)
        assert report.schedule_count == 37  # 1 + 3 * (4 + 8)
        assert report.vector_count == 8
        assert report.executions == 37 * 8
        assert report.tally("validity").checked == report.executions
        assert report.tally("agreement").violations == 0
        assert "PASS" in report.render()

    def test_oracle_subset_and_unknown_oracle(self):
        engine = Engine(small_spec())
        report = engine.check(oracles=("validity", "termination"))
        assert [tally.oracle for tally in report.tallies] == ["validity", "termination"]
        with pytest.raises(InvalidParameterError):
            engine.check(oracles=("no-such-oracle",))
        with pytest.raises(InvalidParameterError):
            report.tally("agreement")

    def test_explicit_vectors_and_rounds(self):
        engine = Engine(small_spec())
        report = engine.check(vectors=[[1, 1, 1], [2, 2, 2]], rounds=1)
        assert report.vector_count == 2
        assert report.rounds == 1
        assert report.schedule_count == 1 + 3 * 4
        with pytest.raises(InvalidParameterError):
            engine.check(rounds=0)

    def test_async_only_algorithm_is_rejected(self):
        engine = Engine(small_spec(k=1), "async-condition")
        with pytest.raises(BackendError):
            engine.check()

    def test_early_deciding_oracle_is_exercised(self):
        engine = Engine(AgreementSpec(n=3, t=1, k=1, domain=2), "early-deciding")
        report = engine.check()
        tally = report.tally("early-deciding-bound")
        assert tally.checked == report.executions
        assert tally.violations == 0
        # Condition-free: the in-condition oracle never applies.
        assert report.tally("round-bound-in-condition").checked == 0
        assert report.tally("round-bound-outside").checked == report.executions

    def test_report_record_is_json_serializable(self):
        report = Engine(small_spec()).check()
        payload = json.dumps(report.to_record(), sort_keys=True)
        assert '"schedule_count": 37' in payload


# ----------------------------------------------------------------------
# The theorems, exhaustively (satellite: every n <= 4, t <= 2, d <= t cell)
# ----------------------------------------------------------------------
def theorem_cells():
    """Every (n, t, d) cell with n <= 4, t <= 2, d <= t; k = max(t, 1).

    The ``t = 2`` cells of ``n = 4`` have schedule spaces in the thousands,
    so they trade the all-vectors frontier for the structured boundary set;
    everything else is exhaustive in both dimensions.
    """
    cells = []
    for n in (3, 4):
        for t in (1, 2):
            if t >= n:
                continue
            for d in range(0, t + 1):
                heavy = n == 4 and t == 2
                cells.append(
                    pytest.param(
                        n, t, d, max(t, 1),
                        3 if heavy else 2,   # m
                        3 if heavy else 100,  # max_vectors
                        1 if heavy else 100,  # all_vectors_limit
                        id=f"n{n}-t{t}-d{d}",
                    )
                )
    return cells


class TestTheoremsExhaustively:
    @pytest.mark.parametrize("n,t,d,k,m,max_vectors,all_vectors_limit", theorem_cells())
    def test_condition_kset_decides_within_the_bounds_on_all_schedules(
        self, n, t, d, k, m, max_vectors, all_vectors_limit
    ):
        spec = AgreementSpec(n=n, t=t, k=k, d=d, ell=1, domain=m)
        report = Engine(spec, "condition-kset").check(
            max_vectors=max_vectors, all_vectors_limit=all_vectors_limit
        )
        assert report.passed, report.render()
        checked = {tally.oracle: tally.checked for tally in report.tallies}
        assert checked["validity"] == report.executions
        # Both round-bound oracles together cover every execution.
        assert (
            checked["round-bound-in-condition"] + checked["round-bound-outside"]
            == report.executions
        )

    @pytest.mark.slow
    def test_condition_kset_k1_t2_full_depth(self):
        """The k=1 variant runs 3 crash rounds deep (8363 schedules x 16
        vectors): beyond the tier-1 budget, same exhaustive claim."""
        spec = AgreementSpec(n=4, t=2, k=1, d=1, ell=1, domain=2)
        report = Engine(spec, "condition-kset").check()
        assert report.schedule_count == 8363
        assert report.passed, report.render()


# ----------------------------------------------------------------------
# Parity: workers=1 and workers=4 produce byte-identical reports (acceptance)
# ----------------------------------------------------------------------
class TestWorkerParity:
    N4T2 = AgreementSpec(n=4, t=2, k=2, d=1, ell=1, domain=6)

    def _records(self, spec, algorithm, **check_kwargs):
        records = []
        for workers in (1, 4):
            engine = Engine(spec, algorithm, RunConfig(workers=workers))
            report = engine.check(**check_kwargs)
            records.append(json.dumps(report.to_record(), sort_keys=True))
        return records

    def test_condition_kset_n4_t2_byte_identical(self):
        serial, parallel = self._records(
            self.N4T2, "condition-kset", max_vectors=4, all_vectors_limit=1
        )
        assert serial == parallel
        report = json.loads(serial)
        assert report["schedule_count"] == 2731  # the complete n=4, t=2 space
        assert report["executions"] == 2731 * 4
        assert all(tally["violations"] == 0 for tally in report["tallies"])

    def test_early_deciding_n4_t2_byte_identical(self):
        serial, parallel = self._records(
            self.N4T2, "early-deciding", max_vectors=3, all_vectors_limit=1
        )
        assert serial == parallel
        report = json.loads(serial)
        assert report["schedule_count"] == 2731
        tallies = {tally["oracle"]: tally for tally in report["tallies"]}
        assert tallies["early-deciding-bound"]["checked"] == report["executions"]
        assert tallies["early-deciding-bound"]["violations"] == 0

    def test_worker_parity_holds_when_violations_exist(self):
        register_mutants()
        spec = small_spec()
        serial, parallel = self._records(spec, MUTANT_HASTY_FLOODMIN)
        assert serial == parallel
        assert json.loads(serial)["counterexamples"]

    def test_parallel_check_requires_registry_engine(self):
        from repro.algorithms.classic_kset import FloodMinKSetAgreement

        engine = Engine.for_algorithm(FloodMinKSetAgreement(t=1, k=1), n=3)
        with pytest.raises(InvalidParameterError):
            run_check(engine, workers=2)

    def test_cross_validation_detects_generator_drift(self, monkeypatch):
        """If the closed form and the generator ever disagree — in either
        direction — the check must refuse to report, not silently truncate."""
        import repro.check.checker as checker
        from repro.exceptions import SimulationError
        from repro.sync.adversary import count_schedules

        for drift in (-1, +1):
            monkeypatch.setattr(
                checker, "count_schedules", lambda n, t, r, d=drift: count_schedules(n, t, r) + d
            )
            with pytest.raises(SimulationError):
                Engine(small_spec()).check()


# ----------------------------------------------------------------------
# The mutant: the checker catches a real violation (and replays it)
# ----------------------------------------------------------------------
class TestMutantDetection:
    @pytest.fixture(autouse=True)
    def _mutants(self):
        register_mutants()

    def test_registration_is_idempotent_and_hidden_by_default(self):
        from repro.check.mutants import (
            MUTANT_ECHOLESS_FLOODMIN,
            MUTANT_HASTY_ASYNC,
            MUTANT_SILENT_FLOODMIN,
        )

        expected = (
            MUTANT_HASTY_FLOODMIN,
            MUTANT_ECHOLESS_FLOODMIN,
            MUTANT_SILENT_FLOODMIN,
            MUTANT_HASTY_ASYNC,
        )
        assert register_mutants() == expected
        assert register_mutants() == expected

    def test_checker_flags_the_hasty_mutant(self):
        report = Engine(small_spec(), MUTANT_HASTY_FLOODMIN).check()
        assert not report.passed
        assert report.tally("agreement").violations > 0
        # The correct algorithms sail through the identical space.
        assert Engine(small_spec(), "floodmin").check().passed
        assert Engine(small_spec(), "condition-kset").check().passed

    def test_counterexample_replays_to_the_same_violation(self):
        report = Engine(small_spec(), MUTANT_HASTY_FLOODMIN).check()
        counterexample = report.counterexamples[0]
        result = counterexample.replay()
        assert result.distinct_decision_count() > counterexample.spec.k
        assert result.decisions == counterexample.decisions

    def test_counterexample_record_round_trips(self):
        report = Engine(small_spec(), MUTANT_HASTY_FLOODMIN).check()
        original = report.counterexamples[0]
        rebuilt = Counterexample.from_record(original.to_record())
        assert rebuilt.to_record() == original.to_record()
        assert rebuilt.schedule.canonical() == original.schedule.canonical()
        with pytest.raises(InvalidParameterError):
            Counterexample.from_record({"oracle": "agreement"})

    def test_counterexamples_persist_to_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "counterexamples.jsonl")
        report = Engine(small_spec(), MUTANT_HASTY_FLOODMIN).check(store=store)
        assert store.counts() == {"counterexample": len(report.counterexamples)}
        loaded = store.load_counterexamples()
        assert [ce.to_record() for ce in loaded] == [
            ce.to_record() for ce in report.counterexamples
        ]
        # The reloaded record is still replayable: the violation reproduces.
        replayed = loaded[0].replay()
        assert replayed.distinct_decision_count() > loaded[0].spec.k

    def test_known_counterexample_regression(self):
        """The first counterexample the checker ever found, pinned forever.

        Found by `Engine(AgreementSpec(3, 1, k=1, d=1, domain=2),
        "mutant-hasty-floodmin").check()`: process 0 proposes 1, crashes
        during round 1 after delivering to {0, 1}; the hasty mutant decides
        at round 1, so p1 decides min(1, 2) = 1 while p2 (which never heard
        p0) decides 2 — two values under k = 1.
        """
        record = {
            "oracle": "agreement",
            "algorithm": MUTANT_HASTY_FLOODMIN,
            "detail": "2 distinct values decided",
            "spec": {"n": 3, "t": 1, "k": 1, "d": 1, "ell": 1, "domain": 2,
                     "condition": "max-legal", "condition_params": ()},
            "vector": [1, 2, 2],
            "schedule": [{"process_id": 0, "round_number": 1, "delivered_to": [0, 1]}],
            "decisions": {"1": 1, "2": 2},
            "duration": 1,
        }
        result = Counterexample.from_record(record).replay()
        assert result.decisions == {1: 1, 2: 2}
        assert result.distinct_decision_count() == 2  # > k = 1: still broken


# ----------------------------------------------------------------------
# Differential mode
# ----------------------------------------------------------------------
class TestDifferentialMode:
    def test_identical_algorithms_never_diverge(self):
        report = differential_check(small_spec(), "condition-kset", "condition-kset")
        assert report.identical and bool(report)
        assert report.mismatches == 0 and report.examples == []
        assert report.executions == report.schedule_count * report.vector_count

    def test_mutant_diverges_from_its_reference(self):
        register_mutants()
        report = differential_check(small_spec(), MUTANT_HASTY_FLOODMIN, "floodmin")
        assert not report.identical
        assert report.mismatches > 0
        diff = report.examples[0]
        assert diff.decisions_a != diff.decisions_b
        assert "DIVERGED" in report.render()
        json.dumps(report.to_record())  # records must be serializable


# ----------------------------------------------------------------------
# The exhaustive scenario (workloads integration)
# ----------------------------------------------------------------------
class TestExhaustiveScenario:
    def test_scenario_spans_the_whole_space(self):
        scenario = exhaustive_scenario(n=3, m=2, t=1, d=1, ell=1, k=1)
        assert scenario.schedule_count == 37
        assert len(scenario.frontier) == 8
        assert scenario.execution_count == 296
        pairs = list(scenario.executions())
        assert len(pairs) == scenario.execution_count
        vector, schedule = pairs[0]
        assert isinstance(vector, InputVector)
        assert schedule.crash_count() == 0  # enumeration starts failure-free

    def test_scenario_check_matches_engine_check(self):
        scenario = exhaustive_scenario(n=3, m=2, t=1, d=1, ell=1, k=1)
        report = scenario.check("condition-kset")
        assert report.passed
        direct = Engine(small_spec()).check()
        assert report.to_record() == direct.to_record()
