"""Tests for the condition algebra: composition semantics, ``l`` propagation,
loud failure modes and the ExplicitCondition query index/memo."""

from __future__ import annotations

from itertools import product

import pytest

from repro.core import (
    BOTTOM,
    ExplicitCondition,
    InputVector,
    MappingRecognizer,
    MaxLegalCondition,
    MinLegalCondition,
    HammingBallCondition,
    View,
    difference,
    intersection,
    materialize,
    restrict,
    union,
)
from repro.core.algebra import UnionCondition, known_size, recognizer_of
from repro.exceptions import (
    DecodingError,
    EmptyConditionError,
    InvalidParameterError,
    InvalidVectorError,
    LegalityError,
)

N, M = 4, 3
MAX = MaxLegalCondition(N, M, x=1, ell=1)
MIN2 = MinLegalCondition(N, M, x=1, ell=2)


def enumerate_domain():
    return [InputVector(entries) for entries in product(range(1, M + 1), repeat=N)]


class TestEllPropagation:
    def test_union_takes_the_maximum(self):
        assert union(MAX, MIN2).ell == 2
        assert union(MIN2, MAX).ell == 2

    def test_intersection_takes_the_minimum(self):
        assert intersection(MAX, MIN2).ell == 1
        assert intersection(MIN2, MAX).ell == 1

    def test_difference_keeps_the_left_degree(self):
        assert difference(MIN2, MAX).ell == 2
        assert difference(MAX, MIN2.restrict(lambda v: v[0] == 1)).ell == 1

    def test_restrict_preserves_the_base_degree(self):
        assert restrict(MIN2, lambda v: 1 in v.val()).ell == 2


class TestCompositionSemantics:
    def test_intersection_membership_is_conjunction(self):
        both = intersection(MAX, MIN2)
        for vector in enumerate_domain():
            assert both.contains(vector) == (MAX.contains(vector) and MIN2.contains(vector))

    def test_difference_membership(self):
        rest = difference(MIN2, MAX)
        for vector in enumerate_domain():
            assert rest.contains(vector) == (MIN2.contains(vector) and not MAX.contains(vector))

    def test_union_membership_and_decode(self):
        united = union(MAX, MIN2)
        members_a = set(MAX.enumerate_vectors())
        members_b = set(MIN2.enumerate_vectors())
        for vector in enumerate_domain():
            assert united.contains(vector) == (vector in members_a or vector in members_b)
        # Decode: the per-side Definition 4 intersection.
        view = View([1, 1, BOTTOM, 3])
        expected = None
        for member in members_a | members_b:
            if not view.contained_in(member):
                continue
            sides = []
            if member in members_a:
                sides.append(MAX.decode(member))
            if member in members_b:
                sides.append(MIN2.decode(member))
            decoded = sides[0] & sides[1] if len(sides) == 2 else sides[0]
            expected = decoded if expected is None else expected & decoded
        assert expected is not None
        assert united.decode(view) == expected & view.val()

    def test_union_decode_single_compatible_side(self):
        left = ExplicitCondition([InputVector([1, 1, 1, 1])], MappingRecognizer(1, {InputVector([1, 1, 1, 1]): {1}}))
        right = ExplicitCondition([InputVector([3, 3, 3, 3])], MappingRecognizer(1, {InputVector([3, 3, 3, 3]): {3}}))
        united = union(left, right)
        assert united.decode(View([3, 3, BOTTOM, BOTTOM])) == frozenset({3})
        with pytest.raises(DecodingError):
            united.decode(View([2, 2, BOTTOM, BOTTOM]))

    def test_union_enumerates_without_duplicates(self):
        united = union(MAX, MIN2)
        vectors = list(united.enumerate_vectors())
        assert len(vectors) == len(set(vectors))
        assert set(vectors) == set(MAX.enumerate_vectors()) | set(MIN2.enumerate_vectors())

    def test_materialized_results_are_indexed_explicit_conditions(self):
        both = intersection(MAX, MIN2)
        assert isinstance(both, ExplicitCondition)
        view = View([3, 3, BOTTOM, BOTTOM])
        assert both.is_compatible(view)
        # 3 is the domain maximum: every completion decodes {3} under the
        # inherited max_1 recognizer, so the Definition 4 intersection keeps it.
        assert both.decode(view) == frozenset({3})

    def test_explicit_restrict_accepts_algebra_options(self):
        explicit = MAX.to_explicit()
        checked = explicit.restrict(lambda vector: True, check_x=1)
        assert set(checked.enumerate_vectors()) == set(explicit.enumerate_vectors())
        with pytest.raises(LegalityError):
            explicit.restrict(
                lambda vector: vector.occurrences(vector.max_value()) == 2,
                check_x=2,
            )

    def test_oracle_convenience_methods(self):
        assert isinstance(MAX.union(MIN2), UnionCondition)
        assert isinstance(MAX.intersection(MIN2), ExplicitCondition)
        assert isinstance(MIN2.difference(MAX), ExplicitCondition)
        # Two explicit operands merge eagerly and stay explicit.
        merged = MAX.to_explicit().union(MIN2.to_explicit())
        assert isinstance(merged, ExplicitCondition)
        assert len(merged) == len(set(MAX.enumerate_vectors()) | set(MIN2.enumerate_vectors()))


class TestFailureModes:
    def test_mismatched_n_names_both_families(self):
        other = MaxLegalCondition(5, M, x=1, ell=1)
        for operation in (union, intersection, difference):
            with pytest.raises(InvalidVectorError) as excinfo:
                operation(MAX, other)
            message = str(excinfo.value)
            assert MAX.name in message and other.name in message

    def test_empty_intersection_names_both_families(self):
        low = HammingBallCondition(N, M, [1, 1, 1, 1], radius=1)
        high = HammingBallCondition(N, M, [3, 3, 3, 3], radius=1)
        with pytest.raises(EmptyConditionError) as excinfo:
            intersection(low, high)
        message = str(excinfo.value)
        assert low.name in message and high.name in message

    def test_empty_difference_and_restriction_raise(self):
        with pytest.raises(EmptyConditionError):
            difference(MAX, MAX)
        with pytest.raises(EmptyConditionError):
            restrict(MAX, lambda vector: False)

    def test_explicit_union_mismatch_names_conditions(self):
        left = ExplicitCondition([InputVector([1, 1])], name="left")
        right = ExplicitCondition([InputVector([1, 1, 1])], name="right")
        with pytest.raises(InvalidVectorError) as excinfo:
            left.union(right)
        assert "left" in str(excinfo.value) and "right" in str(excinfo.value)

    def test_enumeration_budget_enforced(self):
        big_a = MaxLegalCondition(8, 10, x=2, ell=1)
        big_b = MinLegalCondition(8, 10, x=2, ell=1)
        with pytest.raises(InvalidParameterError) as excinfo:
            intersection(big_a, big_b, budget=100)
        assert "budget" in str(excinfo.value)

    def test_legality_guard_at_construction(self):
        # The intersection of the two maximal conditions stays (1, 1)-legal...
        checked = intersection(MAX, MinLegalCondition(N, M, x=1, ell=1), check_x=1)
        assert checked.ell == 1
        # ...but an adversarial restriction loses density and must be rejected.
        with pytest.raises(LegalityError) as excinfo:
            restrict(
                MAX,
                lambda vector: vector.occurrences(vector.max_value()) == 2,
                check_x=2,
            )
        assert "not (2, 1)-legal" in str(excinfo.value)


class TestExplicitConditionIndex:
    def test_indexed_answers_match_naive_scan(self):
        condition = MAX.to_explicit()
        views = [
            View([1, BOTTOM, BOTTOM, 3]),
            View([3, 3, BOTTOM, BOTTOM]),
            View([2, 2, 2, BOTTOM]),
            View([BOTTOM, BOTTOM, BOTTOM, BOTTOM]),
            View([1, 2, 3, 1]),
        ]
        for view in views:
            naive = [v for v in condition.vectors if view.contained_in(v)]
            assert set(condition.vectors_containing(view)) == set(naive)
            assert condition.is_compatible(view) == bool(naive)

    def test_memo_is_consistent_across_repeats(self):
        condition = MAX.to_explicit()
        view = View([3, BOTTOM, BOTTOM, 1])
        first = condition.decode(view)
        assert condition.decode(view) is first  # memo hit returns the cached set
        assert condition.is_compatible(view) == condition.is_compatible(view)

    def test_introspection_helpers(self):
        assert known_size(MAX.to_explicit()) == len(MAX.to_explicit())
        assert known_size(MAX) == MAX.size()
        assert recognizer_of(MAX) is MAX.recognizer
        bare = ExplicitCondition([InputVector([1, 1])])
        assert recognizer_of(bare) is None

    def test_materialize_requires_enumerable(self):
        class Opaque(MaxLegalCondition):
            enumerate_vectors = None

        with pytest.raises(InvalidParameterError):
            materialize(Opaque(3, 2, 1, 1))
