"""The lint engine: suppressions, baselines, reports, CLI gate, whole tree."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.exceptions import InvalidParameterError, RegistryError, StoreError
from repro.lint import (
    Baseline,
    Finding,
    ModuleIndex,
    available_rules,
    default_lint_root,
    run_lint,
)
from repro.lint.baseline import default_baseline_path


def write_module(tmp_path, source, filename="module.py"):
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


VIOLATION = """
    def validate(n):
        if n < 1:
            raise ValueError("n must be positive")
    """


# ----------------------------------------------------------------------
# Finding
# ----------------------------------------------------------------------
class TestFinding:
    def make(self, **overrides):
        record = {
            "rule": "raise-builtin",
            "group": "exceptions",
            "severity": "error",
            "path": "sync/messages.py",
            "line": 41,
            "message": "raise ValueError bypasses the hierarchy",
        }
        record.update(overrides)
        return Finding(**record)

    def test_round_trip(self):
        finding = self.make()
        assert Finding.from_record(finding.to_record()) == finding

    def test_render_and_location(self):
        finding = self.make()
        assert finding.location() == "sync/messages.py:41"
        assert finding.render().startswith("sync/messages.py:41: error [raise-builtin]")

    def test_fingerprint_omits_line(self):
        assert self.make(line=41).fingerprint() == self.make(line=99).fingerprint()

    def test_rejects_bad_severity_and_line(self):
        with pytest.raises(InvalidParameterError):
            self.make(severity="fatal")
        with pytest.raises(InvalidParameterError):
            self.make(line=0)

    def test_from_record_rejects_malformed(self):
        with pytest.raises(InvalidParameterError):
            Finding.from_record({"rule": "raise-builtin"})


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        write_module(
            tmp_path,
            """
            def validate(n):
                raise ValueError(n)  # repro: lint-ok[raise-builtin]
            """,
        )
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert report.clean
        assert len(report.suppressed) == 1

    def test_line_above_suppression(self, tmp_path):
        write_module(
            tmp_path,
            """
            def validate(n):
                # repro: lint-ok[raise-builtin]
                raise ValueError(n)
            """,
        )
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert report.clean
        assert len(report.suppressed) == 1

    def test_wildcard_suppression(self, tmp_path):
        write_module(
            tmp_path,
            """
            def validate(n):
                raise ValueError(n)  # repro: lint-ok[*]
            """,
        )
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert report.clean

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        write_module(
            tmp_path,
            """
            def validate(n):
                raise ValueError(n)  # repro: lint-ok[wall-clock]
            """,
        )
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert not report.clean


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_and_line_shift_immunity(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert len(report.findings) == 1

        path = tmp_path / "lint-baseline.json"
        Baseline.write(path, report.findings)
        baseline = Baseline.load(path)
        assert len(baseline) == 1

        # Shift the violation down some lines: still covered (fingerprints
        # are line-independent).
        write_module(tmp_path, "\n\n\n\n" + textwrap.dedent(VIOLATION))
        shifted = run_lint(tmp_path, rules=["raise-builtin"], baseline=baseline)
        assert shifted.clean
        assert len(shifted.baselined) == 1

    def test_unrelated_finding_is_not_covered(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        report = run_lint(tmp_path, rules=["raise-builtin"])
        baseline = Baseline.write(tmp_path / "lint-baseline.json", report.findings)

        write_module(
            tmp_path,
            """
            def validate(n):
                if n < 1:
                    raise ValueError("n must be positive")
                raise TypeError("unreachable but different")
            """,
        )
        report = run_lint(tmp_path, rules=["raise-builtin"], baseline=baseline)
        assert len(report.findings) == 1
        assert "TypeError" in report.findings[0].message
        assert len(report.baselined) == 1

    def test_load_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(StoreError):
            Baseline.load(path)
        with pytest.raises(StoreError):
            Baseline.load(tmp_path / "missing.json")

    def test_default_baseline_path_walks_ancestors(self, tmp_path):
        package = tmp_path / "src" / "pkg"
        package.mkdir(parents=True)
        assert default_baseline_path(package) is None
        marker = tmp_path / "lint-baseline.json"
        marker.write_text('{"version": 1, "findings": []}', encoding="utf-8")
        assert default_baseline_path(package) == marker


# ----------------------------------------------------------------------
# engine semantics
# ----------------------------------------------------------------------
class TestEngine:
    def test_unknown_rule_raises_registry_error(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        with pytest.raises(RegistryError):
            run_lint(tmp_path, rules=["no-such-rule"])

    def test_syntax_error_raises_invalid_parameter(self, tmp_path):
        write_module(tmp_path, "def broken(:\n")
        with pytest.raises(InvalidParameterError):
            ModuleIndex.build(tmp_path)

    def test_report_is_sorted_and_counts_files(self, tmp_path):
        write_module(tmp_path, VIOLATION, filename="b.py")
        write_module(tmp_path, VIOLATION, filename="a.py")
        write_module(tmp_path, "x = 1\n", filename="c.py")
        report = run_lint(tmp_path, rules=["raise-builtin"])
        assert report.files == 3
        assert [finding.path for finding in report.findings] == ["a.py", "b.py"]

    def test_json_report_shape(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        report = run_lint(tmp_path, rules=["raise-builtin"])
        payload = json.loads(report.to_json())
        assert payload["clean"] is False
        assert payload["rules"] == ["raise-builtin"]
        assert payload["findings"][0]["rule"] == "raise-builtin"


# ----------------------------------------------------------------------
# the shipped tree lints clean (modulo the committed baseline)
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_src_repro_is_lint_clean(self):
        root = default_lint_root()
        baseline_path = default_baseline_path(root)
        baseline = None if baseline_path is None else Baseline.load(baseline_path)
        report = run_lint(root, baseline=baseline)
        assert report.clean, report.render()
        assert report.files >= 80
        assert set(report.rules) == set(available_rules())

    def test_committed_baseline_is_empty(self):
        # The healthy steady state: no grandfathered debt.  If a rule change
        # forces entries in, this test documents the regression explicitly.
        baseline_path = default_baseline_path(default_lint_root())
        assert baseline_path is not None
        assert len(Baseline.load(baseline_path)) == 0


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------
class TestCliGate:
    def test_strict_exits_zero_on_clean_tree(self, tmp_path, capsys):
        write_module(tmp_path, "x = 1\n")
        assert main(["lint", str(tmp_path), "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_strict_exits_one_on_violation(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION)
        assert main(["lint", str(tmp_path), "--strict"]) == 1
        assert "raise-builtin" in capsys.readouterr().out

    def test_default_mode_reports_without_failing(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION)
        assert main(["lint", str(tmp_path)]) == 0
        assert "raise-builtin" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION)
        main(["lint", str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False

    def test_write_baseline_then_strict_passes(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION)
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(tmp_path), "--write-baseline"]) == 0
        assert baseline.is_file()
        assert main(["lint", str(tmp_path), "--strict"]) == 0
        assert (
            main(["lint", str(tmp_path), "--strict", "--no-baseline"]) == 1
        )
        capsys.readouterr()

    def test_rule_selection(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION)
        assert main(["lint", str(tmp_path), "--strict", "--rules", "wall-clock"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in available_rules():
            assert rule in out

    def test_shipped_tree_gate_passes(self, capsys):
        # The exact command CI runs.
        assert main(["lint", "--strict"]) == 0
        capsys.readouterr()

    def test_introduced_violation_fails_each_rule_gate(self, tmp_path, capsys):
        """Acceptance: any single rule's fixture violation flips --strict to 1."""
        violations = {
            "unseeded-random": "import random\nx = random.random()\n",
            "wall-clock": "import time\nx = time.time()\n",
            "set-iteration": "out = [v for v in {3, 1, 2}]\n",
            "registry-entry": (
                "@register_algorithm('a', ('quantum',), 's')\n"
                "def build(spec, condition):\n    return None\n"
            ),
            "mutant-registration": "register_mutants()\n",
            "adversary-namespace": (
                "@register_async_adversary('dup', 's')\n"
                "def a(seed):\n    return None\n"
                "@register_net_adversary('dup', 's')\n"
                "def b(n, t, seed):\n    return None\n"
            ),
            "record-parity-keys": (
                "class R:\n"
                "    left: int\n"
                "    def to_record(self):\n"
                "        return {'left': self.left, 'ghost': 0}\n"
                "    @classmethod\n"
                "    def from_record(cls, record):\n"
                "        return cls(**record)\n"
            ),
            "record-parity-fields": (
                "class R:\n"
                "    left: int\n"
                "    right: int\n"
                "    def to_record(self):\n"
                "        return {'left': self.left}\n"
                "    @classmethod\n"
                "    def from_record(cls, record):\n"
                "        return cls(**record)\n"
            ),
            "store-kinds": (
                "EVENT_KIND = 'event'\n"
                "class Store:\n"
                "    def append_event(self, e):\n"
                "        self.write(EVENT_KIND)\n"
            ),
            "envelope-frozen": "class LoneShard:\n    pass\n",
            "envelope-fields": (
                "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class BagTask:\n"
                "    items: list\n"
            ),
            "raise-builtin": "def f():\n    raise ValueError('x')\n",
            "oracle-applicability": "oracle = PropertyOracle('validity', 's')\n",
        }
        assert set(violations) == set(available_rules())
        for rule, source in violations.items():
            tree = tmp_path / rule
            tree.mkdir()
            (tree / "module.py").write_text(source, encoding="utf-8")
            assert main(["lint", str(tree), "--strict"]) == 1, rule
            assert main(["lint", str(tree), "--strict", "--rules", rule]) == 1, rule
        capsys.readouterr()
