"""Hypothesis property tests for the conditions framework.

These tests assert the structural invariants of Sections 2–3 on randomly
generated vectors, views and parameters: the analytic oracle of the maximal
``max_l`` condition agrees with brute-force enumeration, the counting formulas
agree with enumeration, containment behaves like a partial order, and
Theorem 1 holds for decodable views.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import small_params, vectors, views

from repro.core.conditions import MaxLegalCondition
from repro.core.counting import brute_force_condition_size, max_condition_size
from repro.core.vectors import (
    InputVector,
    View,
    generalized_distance,
    hamming_distance,
    intersecting_values,
)


# ----------------------------------------------------------------------
# Vector / view invariants
# ----------------------------------------------------------------------
@given(st.integers(2, 6).flatmap(lambda n: st.tuples(vectors(n, 4), vectors(n, 4))))
def test_hamming_distance_is_a_metric_on_vectors(pair):
    first, second = pair
    assert hamming_distance(first, second) == hamming_distance(second, first)
    assert hamming_distance(first, first) == 0
    assert 0 <= hamming_distance(first, second) <= len(first)
    assert (hamming_distance(first, second) == 0) == (first == second)


@given(
    st.integers(2, 5).flatmap(
        lambda n: st.lists(vectors(n, 3), min_size=2, max_size=4)
    )
)
def test_generalized_distance_bounds(vector_list):
    distance = generalized_distance(vector_list)
    n = len(vector_list[0])
    assert 0 <= distance <= n
    # d_G dominates every pairwise Hamming distance.
    for i, first in enumerate(vector_list):
        for second in vector_list[i + 1 :]:
            assert hamming_distance(first, second) <= distance
    # The intersecting vector has exactly n − d_G entries.
    assert len(intersecting_values(vector_list)) == n - distance


@given(st.integers(2, 6).flatmap(lambda n: st.tuples(st.just(n), views(n, 3))))
def test_view_containment_of_completions(data):
    n, view = data
    filled = view.fill_bottoms(3)
    assert view.contained_in(filled)
    assert view.bottom_count() + view.non_bottom_count() == n
    restricted = filled.restrict(view.non_bottom_positions())
    assert restricted.contained_in(filled)


@given(st.integers(2, 5).flatmap(lambda n: st.tuples(views(n, 3), views(n, 3), views(n, 3))))
def test_containment_is_transitive_and_antisymmetric(triple):
    a, b, c = triple
    if a.contained_in(b) and b.contained_in(c):
        assert a.contained_in(c)
    if a.contained_in(b) and b.contained_in(a):
        assert a == b


# ----------------------------------------------------------------------
# Counting
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_params)
def test_counting_formula_matches_enumeration(params):
    n, m, x, ell = params
    assert max_condition_size(n, m, x, ell) == brute_force_condition_size(n, m, x, ell)


@settings(max_examples=30, deadline=None)
@given(small_params)
def test_condition_membership_consistent_with_size(params):
    n, m, x, ell = params
    condition = MaxLegalCondition(n, m, x, ell)
    enumerated = list(condition.enumerate_vectors())
    assert len(enumerated) == condition.size()
    assert all(condition.contains(v) for v in enumerated)


# ----------------------------------------------------------------------
# The implicit oracle vs the explicit enumeration
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    small_params.flatmap(
        lambda params: st.tuples(st.just(params), views(params[0], params[1]))
    )
)
def test_maxlegal_oracle_matches_explicit(data):
    (n, m, x, ell), view = data
    implicit = MaxLegalCondition(n, m, x, ell)
    explicit = implicit.to_explicit()
    assert implicit.is_compatible(view) == explicit.is_compatible(view)
    if implicit.is_compatible(view):
        assert implicit.decode(view) == explicit.decode(view)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    small_params.flatmap(
        lambda params: st.tuples(st.just(params), views(params[0], params[1]))
    )
)
def test_theorem1_on_decodable_views(data):
    """Theorem 1: views with at most x missing entries decode to 1..l values of the view."""
    (n, m, x, ell), view = data
    condition = MaxLegalCondition(n, m, x, ell)
    if view.bottom_count() > x or not view.val():
        return
    if not condition.is_compatible(view):
        return
    decoded = condition.decode(view)
    assert 1 <= len(decoded) <= ell
    assert decoded <= view.val()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    small_params.flatmap(
        lambda params: st.tuples(st.just(params), vectors(params[0], params[1]))
    )
)
def test_decode_of_full_member_vector_is_max_ell(data):
    """On a full vector of the condition, the decoded set is exactly max_l(I)."""
    (n, m, x, ell), vector = data
    condition = MaxLegalCondition(n, m, x, ell)
    if not condition.contains(vector):
        return
    view = View(vector.entries)
    decoded = condition.decode(view)
    assert decoded == frozenset(vector.greatest_values(ell))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    small_params.flatmap(
        lambda params: st.tuples(st.just(params), vectors(params[0], params[1]))
    )
)
def test_decode_monotone_under_containment(data):
    """For views of a member vector, smaller views can only decode supersets
    allowed by Definition 4 restricted to val(J); in particular both decode
    inside max_l(I)."""
    (n, m, x, ell), vector = data
    condition = MaxLegalCondition(n, m, x, ell)
    if not condition.contains(vector) or x == 0:
        return
    full_view = View(vector.entries)
    partial = vector.restrict(range(1, n))  # hide entry 0 (<= x missing since x >= 1)
    top = frozenset(vector.greatest_values(ell))
    assert condition.decode(full_view) <= top
    if condition.is_compatible(partial):
        assert condition.decode(partial) <= top | partial.val()
