"""Unit tests for the legality-class hierarchy and the synchronous classes (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import (
    LegalityClass,
    SynchronousClass,
    hierarchy_fixed_d,
    hierarchy_fixed_ell,
    rounds_in_condition,
    rounds_outside_condition,
)
from repro.exceptions import InvalidParameterError


class TestRoundFormulas:
    def test_rounds_in_condition_examples(self):
        # k = l = 1: d + 1 rounds (with the 2-round floor).
        assert rounds_in_condition(3, 1, 1) == 4
        assert rounds_in_condition(1, 1, 1) == 2
        assert rounds_in_condition(0, 1, 1) == 2
        # The generic pair (k, ⌊d/k⌋ + 1) of Section 1.2 for consensus conditions.
        assert rounds_in_condition(6, 1, 2) == 4
        assert rounds_in_condition(6, 1, 3) == 3
        # The (d+1)-set one-round case: ⌊d/(d+1)⌋ + 1 = 1 → floored to 2
        # (the algorithm always needs the dissemination round).
        assert rounds_in_condition(4, 1, 5) == 2

    def test_rounds_in_condition_with_ell(self):
        assert rounds_in_condition(4, 2, 2) == 3
        assert rounds_in_condition(4, 3, 2) == 4
        # d = t − l + 1 (the class containing C_all) recovers ⌊t/k⌋ + 1.
        t, ell, k = 7, 3, 2
        d = t - ell + 1
        assert rounds_in_condition(d, ell, k) == rounds_outside_condition(t, k)

    def test_rounds_outside_condition(self):
        assert rounds_outside_condition(6, 1) == 7
        assert rounds_outside_condition(6, 2) == 4
        assert rounds_outside_condition(6, 3) == 3
        assert rounds_outside_condition(0, 1) == 2  # floored at two rounds

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            rounds_in_condition(-1, 1, 1)
        with pytest.raises(InvalidParameterError):
            rounds_in_condition(1, 0, 1)
        with pytest.raises(InvalidParameterError):
            rounds_in_condition(1, 1, 0)
        with pytest.raises(InvalidParameterError):
            rounds_outside_condition(-1, 1)
        with pytest.raises(InvalidParameterError):
            rounds_outside_condition(1, 0)


class TestLegalityClass:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LegalityClass(-1, 1)
        with pytest.raises(InvalidParameterError):
            LegalityClass(0, 0)

    def test_inclusion_order(self):
        base = LegalityClass(3, 2)
        assert base.is_subclass_of(LegalityClass(3, 2))
        assert base.is_subclass_of(LegalityClass(2, 2))  # Theorem 4
        assert base.is_subclass_of(LegalityClass(3, 3))  # Theorem 6
        assert base.is_subclass_of(LegalityClass(1, 4))
        assert not base.is_subclass_of(LegalityClass(4, 2))
        assert not base.is_subclass_of(LegalityClass(3, 1))

    def test_includes_is_converse(self):
        small, big = LegalityClass(3, 2), LegalityClass(2, 3)
        assert big.includes(small)
        assert not small.includes(big)

    def test_diagonal_incomparability(self):
        """Theorems 14 and 15: (x, l) and (x+1, l+1) are not comparable."""
        first, second = LegalityClass(1, 1), LegalityClass(2, 2)
        assert not first.is_subclass_of(second)
        assert not second.is_subclass_of(first)
        assert not first.is_comparable_with(second)

    def test_all_vectors_frontier(self):
        assert LegalityClass(1, 2).contains_all_vectors_condition()
        assert not LegalityClass(2, 2).contains_all_vectors_condition()
        assert LegalityClass(0, 1).contains_all_vectors_condition()

    def test_label_and_order(self):
        assert LegalityClass(2, 1).label() == "[2,1]"
        assert sorted([LegalityClass(2, 1), LegalityClass(1, 1)])[0] == LegalityClass(1, 1)


class TestSynchronousClass:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SynchronousClass(t=3, d=4, ell=1)
        with pytest.raises(InvalidParameterError):
            SynchronousClass(t=3, d=-1, ell=1)
        with pytest.raises(InvalidParameterError):
            SynchronousClass(t=3, d=1, ell=0)

    def test_x_and_difficulty(self):
        cls = SynchronousClass(t=6, d=2, ell=1)
        assert cls.x == 4
        assert cls.difficulty == 4
        assert cls.legality_class() == LegalityClass(4, 1)
        assert cls.label() == "S^2_6[1]"

    def test_inclusion_within_a_system(self):
        smaller = SynchronousClass(t=6, d=2, ell=1)
        larger = SynchronousClass(t=6, d=4, ell=1)
        assert smaller.is_subclass_of(larger)
        assert not larger.is_subclass_of(smaller)
        with pytest.raises(InvalidParameterError):
            smaller.is_subclass_of(SynchronousClass(t=5, d=2, ell=1))

    def test_all_vectors_membership(self):
        # C_all ∈ S^d_t[l] iff l > t − d.
        assert SynchronousClass(t=5, d=5, ell=1).contains_all_vectors_condition()
        assert SynchronousClass(t=5, d=3, ell=3).contains_all_vectors_condition()
        assert not SynchronousClass(t=5, d=3, ell=2).contains_all_vectors_condition()

    def test_supports_k(self):
        cls = SynchronousClass(t=6, d=3, ell=2)
        assert cls.supports_k(2)
        assert cls.supports_k(3)
        assert not cls.supports_k(1)  # l > k
        assert not SynchronousClass(t=6, d=5, ell=2).supports_k(3)  # l > t − d

    def test_round_bounds(self):
        cls = SynchronousClass(t=6, d=3, ell=2)
        assert cls.rounds_in_condition(2) == 3
        assert cls.rounds_outside_condition(2) == 4
        assert cls.rounds_fast_path() == 2


class TestHierarchies:
    def test_fixed_ell_chain(self):
        chain = hierarchy_fixed_ell(t=4, ell=1)
        assert [cls.d for cls in chain] == [0, 1, 2, 3, 4]
        assert all(
            chain[i].is_subclass_of(chain[i + 1]) for i in range(len(chain) - 1)
        )

    def test_fixed_d_chain(self):
        chain = hierarchy_fixed_d(t=4, d=2, max_ell=4)
        assert [cls.ell for cls in chain] == [1, 2, 3, 4]
        assert all(
            chain[i].is_subclass_of(chain[i + 1]) for i in range(len(chain) - 1)
        )

    def test_fixed_d_needs_positive_max_ell(self):
        with pytest.raises(InvalidParameterError):
            hierarchy_fixed_d(t=4, d=2, max_ell=0)
